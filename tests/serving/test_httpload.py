"""Tests for the socket-level open-loop load generator."""

from __future__ import annotations

import pytest

from repro.reliability.overload import AdmissionController
from repro.serving import (
    GatewayConfig,
    GatewayThread,
    HttpLoadGenerator,
    HttpLoadReport,
    RequestRouter,
    ServingGateway,
    http_get_json,
)


class _Backend:
    def recommend_ids(self, user_id, current_video=None, n=None, now=None):
        return [f"rec{i}" for i in range(n or 10)]


USERS = [f"u{i}" for i in range(20)]
VIDEOS = [f"v{i}" for i in range(30)]


def test_validation():
    with pytest.raises(ValueError):
        HttpLoadGenerator("h", 1, [], VIDEOS)
    with pytest.raises(ValueError):
        HttpLoadGenerator("h", 1, USERS, VIDEOS, related_fraction=1.5)
    generator = HttpLoadGenerator("h", 1, USERS, VIDEOS)
    with pytest.raises(ValueError):
        generator.run_offered(0, qps=10)
    with pytest.raises(ValueError):
        generator.run_offered(10, qps=0)


def test_offered_load_end_to_end():
    router = RequestRouter(_Backend())
    config = GatewayConfig(batch_window_ms=2.0)
    with GatewayThread(ServingGateway(router)) as server:
        generator = HttpLoadGenerator(
            server.host, server.port, USERS, VIDEOS, seed=3
        )
        report = generator.run_offered(total_requests=50, qps=500.0)
    assert report.offered == 50
    assert report.completed == 50
    assert report.ok == 50
    assert report.connect_errors == 0
    assert report.shed == 0
    assert len(report.latencies_ms) == 50
    assert report.p99_ms >= report.p50_ms > 0
    assert report.achieved_qps > 0
    # The router saw exactly the offered requests.
    assert router.total_requests == 50


def test_overload_sheds_on_the_wire():
    admission = AdmissionController(rate=1e-9)
    router = RequestRouter(_Backend(), admission=admission)
    with GatewayThread(ServingGateway(router)) as server:
        generator = HttpLoadGenerator(
            server.host, server.port, USERS, VIDEOS, seed=3
        )
        report = generator.run_offered(total_requests=20, qps=400.0)
    assert report.shed == 20
    assert report.ok == 0
    # Shed responses never contribute latency samples.
    assert report.latencies_ms == ()
    assert report.p99_ms == 0.0


def test_http_get_json_helper():
    router = RequestRouter(_Backend())
    with GatewayThread(ServingGateway(router)) as server:
        status, headers, doc = http_get_json(
            server.host, server.port, "/healthz"
        )
    assert status == 200
    assert doc["status"] == "ok"
    assert headers["content-type"] == "application/json"


def test_report_properties():
    report = HttpLoadReport(
        offered=10,
        offered_qps=100.0,
        elapsed_seconds=2.0,
        status_counts={200: 6, 503: 2, 504: 1, 500: 1},
        connect_errors=1,
        latencies_ms=(1.0, 2.0, 3.0, 4.0, 5.0, 6.0),
    )
    assert report.completed == 10
    assert report.ok == 6
    assert report.shed == 2
    assert report.deadline_exceeded == 1
    assert report.errors == 2  # one 500 + one connect error
    assert report.achieved_qps == 3.0
    assert report.p50_ms == 3.0
    assert report.mean_ms == pytest.approx(3.5)
