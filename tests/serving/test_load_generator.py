"""Tests for the load generator — including serve-while-train."""

import pytest

from repro.clock import VirtualClock
from repro.core import RealtimeRecommender
from repro.serving import LoadGenerator, RequestRouter


class _Backend:
    def recommend_ids(self, user_id, current_video=None, n=None, now=None):
        return ["v1", "v2"]


class TestLoadGenerator:
    def test_fires_requested_volume(self):
        router = RequestRouter(_Backend())
        generator = LoadGenerator(router, ["u1", "u2"], ["v1", "v2"])
        report = generator.run(total_requests=80, workers=4)
        assert report.requests == 80
        assert report.errors == 0
        assert report.qps > 0
        assert report.mean_latency_ms >= 0
        assert report.p99_latency_ms >= report.mean_latency_ms

    def test_scenario_mix_respected(self):
        router = RequestRouter(_Backend())
        generator = LoadGenerator(
            router, ["u1"], ["v1"], related_fraction=1.0
        )
        generator.run(total_requests=20, workers=2)
        from repro.serving import Scenario

        assert router.stats(Scenario.RELATED_VIDEOS).requests == 20
        assert router.stats(Scenario.GUESS_YOU_LIKE).requests == 0

    def test_validation(self):
        router = RequestRouter(_Backend())
        with pytest.raises(ValueError):
            LoadGenerator(router, [], ["v1"])
        with pytest.raises(ValueError):
            LoadGenerator(router, ["u"], ["v"], related_fraction=2.0)
        generator = LoadGenerator(router, ["u"], ["v"])
        with pytest.raises(ValueError):
            generator.run(total_requests=0)


class TestServeWhileTrain:
    def test_serving_stays_healthy_during_online_training(
        self, small_world, small_split
    ):
        """The system's defining property: requests are served with zero
        errors while the same recommender ingests the live stream."""
        recommender = RealtimeRecommender(
            small_world.videos,
            users=small_world.users,
            clock=VirtualClock(0.0),
        )
        # warm start so there is state to read while writes happen
        recommender.observe_stream(small_split.train[:1000])
        router = RequestRouter(recommender)
        generator = LoadGenerator(
            router,
            list(small_world.users),
            list(small_world.videos),
            seed=3,
        )
        report = generator.run(
            total_requests=200,
            workers=4,
            now=small_split.train[1000].timestamp,
            training_stream=small_split.train[1000:3000],
            observe=recommender.observe,
        )
        assert report.errors == 0
        assert report.requests == 200
        assert report.trained_actions > 0
        # the trainer genuinely ran concurrently and the model advanced
        assert recommender.trainer.stats.seen >= 1000
