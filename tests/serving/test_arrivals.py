"""Tests for the shared open-loop arrival-process helper."""

import numpy as np
import pytest

from repro.clock import VirtualClock
from repro.errors import ConfigError
from repro.serving import ARRIVAL_PROCESSES, arrival_times, offer


class TestUniform:
    def test_matches_legacy_float_accumulation(self):
        """The uniform schedule must reproduce the historical run_offered
        spacing bit for bit — same float additions, same rounding."""
        qps = 37.0
        start = 123.456
        legacy = []
        t = start
        for _ in range(50):
            legacy.append(t)
            t += 1.0 / qps
        assert arrival_times(start, 50, qps) == legacy

    def test_first_arrival_is_start(self):
        assert arrival_times(10.0, 5, 100.0)[0] == 10.0

    def test_mean_rate(self):
        times = arrival_times(0.0, 1001, 25.0)
        assert (times[-1] - times[0]) == pytest.approx(1000 / 25.0)


class TestPoisson:
    def test_deterministic_given_seed(self):
        a = arrival_times(0.0, 100, 50.0, process="poisson", rng=7)
        b = arrival_times(0.0, 100, 50.0, process="poisson", rng=7)
        c = arrival_times(0.0, 100, 50.0, process="poisson", rng=8)
        assert a == b
        assert a != c

    def test_accepts_generator_instance(self):
        rng = np.random.default_rng(7)
        a = arrival_times(0.0, 100, 50.0, process="poisson", rng=rng)
        b = arrival_times(0.0, 100, 50.0, process="poisson", rng=7)
        assert a == b

    def test_starts_at_start_and_is_monotone(self):
        times = arrival_times(5.0, 200, 40.0, process="poisson", rng=1)
        assert times[0] == 5.0
        assert all(b >= a for a, b in zip(times, times[1:]))

    def test_mean_rate_close_to_target(self):
        times = arrival_times(0.0, 5000, 80.0, process="poisson", rng=3)
        rate = (len(times) - 1) / (times[-1] - times[0])
        assert rate == pytest.approx(80.0, rel=0.1)


class TestBurst:
    def test_burst_structure(self):
        times = arrival_times(
            0.0, 32, 16.0, process="burst", burst_size=16, burst_factor=8.0
        )
        inside = 1.0 / (16.0 * 8.0)
        # Within a burst: tight spacing; between bursts: a long idle gap.
        assert times[1] - times[0] == pytest.approx(inside)
        gap = times[16] - times[15]
        assert gap > 10 * inside

    def test_long_run_mean_rate_preserved(self):
        qps = 20.0
        times = arrival_times(
            0.0, 320, qps, process="burst", burst_size=16, burst_factor=8.0
        )
        # 320 arrivals = 20 full burst periods of burst_size/qps each.
        assert times[-1] == pytest.approx(
            (320 - 16) / qps + 15 / (qps * 8.0)
        )

    def test_burst_knob_validation(self):
        with pytest.raises(ConfigError):
            arrival_times(0.0, 4, 10.0, process="burst", burst_size=0)
        with pytest.raises(ConfigError):
            arrival_times(0.0, 4, 10.0, process="burst", burst_factor=1.0)


class TestValidation:
    def test_bad_count_qps_process(self):
        with pytest.raises(ConfigError):
            arrival_times(0.0, 0, 10.0)
        with pytest.raises(ConfigError):
            arrival_times(0.0, 5, 0.0)
        with pytest.raises(ConfigError):
            arrival_times(0.0, 5, 10.0, process="fractal")

    def test_process_registry(self):
        assert set(ARRIVAL_PROCESSES) == {"uniform", "poisson", "burst"}


class TestOffer:
    def test_advances_clock_to_each_arrival(self):
        clock = VirtualClock(0.0)
        times = [1.0, 2.5, 4.0]
        seen = list(offer(clock, times))
        assert seen == times
        assert clock.now() == 4.0

    def test_never_moves_clock_backwards(self):
        """A slow backend that overruns the schedule fires late arrivals
        immediately — open-loop semantics."""
        clock = VirtualClock(0.0)
        seen = []
        for t in offer(clock, [1.0, 2.0, 3.0]):
            seen.append(t)
            clock.advance(5.0)  # the backend burns past the next arrivals
        assert seen[0] == 1.0
        assert seen[1] == 6.0  # fired at the overrun clock, not at 2.0
        assert seen[2] == 11.0
