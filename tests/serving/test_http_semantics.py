"""Wire-semantics contract: router outcomes ↔ HTTP statuses ↔ counters.

Each test drives one overload outcome through a real socket and asserts
*both* sides of the contract — the HTTP status/header the client saw and
the router snapshot counter that moved — so the wire mapping and the
internal accounting cannot drift apart (DESIGN.md "Serving over HTTP").
"""

from __future__ import annotations

import http.client
import json

from repro.reliability.overload import AdmissionController
from repro.serving import (
    GatewayConfig,
    GatewayThread,
    RequestRouter,
    ServingGateway,
)


class _OkBackend:
    def recommend_ids(self, user_id, current_video=None, n=None, now=None):
        return [f"rec{i}" for i in range(n or 10)]


class _FailingBackend:
    def recommend_ids(self, user_id, current_video=None, n=None, now=None):
        raise RuntimeError("primary exploded")


def _post_recommend(port, body):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10.0)
    try:
        conn.request(
            "POST",
            "/recommend",
            body=json.dumps(body),
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        doc = json.loads(response.read() or b"{}")
        return response.status, dict(response.getheaders()), doc
    finally:
        conn.close()


def _snapshot(router):
    return router.snapshot()["guess_you_like"]


def test_shed_maps_to_503_with_retry_after():
    # A bucket with ~zero capacity sheds every request on arrival.
    admission = AdmissionController(rate=1e-9)
    router = RequestRouter(_OkBackend(), admission=admission)
    with GatewayThread(ServingGateway(router)) as server:
        status, headers, doc = _post_recommend(server.port, {"user_id": "u1"})
    assert status == 503
    assert headers["Retry-After"] == "1"
    assert doc["error"] == "shed"
    assert doc["reason"] == "rate"
    counters = _snapshot(router)
    assert counters["shed"] == 1
    assert counters["requests"] == 1
    assert counters["errors"] == 0


def test_deadline_maps_to_504():
    # Primary fails and the budget is already spent -> deadline, not error.
    router = RequestRouter(_FailingBackend(), fallback=_OkBackend())
    with GatewayThread(ServingGateway(router)) as server:
        status, _headers, doc = _post_recommend(
            server.port, {"user_id": "u1", "deadline_ms": 0}
        )
    assert status == 504
    assert doc["error"] == "deadline exceeded"
    counters = _snapshot(router)
    assert counters["deadline_exceeded"] == 1
    assert counters["errors"] == 0
    assert counters["fallbacks"] == 0


def test_fallback_served_maps_to_200_with_degraded_header():
    router = RequestRouter(_FailingBackend(), fallback=_OkBackend())
    with GatewayThread(ServingGateway(router)) as server:
        status, headers, doc = _post_recommend(
            server.port, {"user_id": "u1", "n": 2}
        )
    assert status == 200
    assert headers["X-Repro-Degraded"] == "1"
    assert doc["video_ids"] == ["rec0", "rec1"]
    counters = _snapshot(router)
    assert counters["fallbacks"] == 1
    assert counters["errors"] == 0


def test_fallback_also_failing_maps_to_500():
    router = RequestRouter(_FailingBackend(), fallback=_FailingBackend())
    with GatewayThread(ServingGateway(router)) as server:
        status, headers, doc = _post_recommend(server.port, {"user_id": "u1"})
    assert status == 500
    assert "primary exploded" in doc["error"]
    assert "fallback failed" in doc["error"]
    assert "X-Repro-Degraded" not in headers
    counters = _snapshot(router)
    assert counters["errors"] == 1
    assert counters["fallbacks"] == 0


def test_ok_maps_to_plain_200():
    router = RequestRouter(_OkBackend())
    with GatewayThread(ServingGateway(router)) as server:
        status, headers, doc = _post_recommend(
            server.port, {"user_id": "u1", "n": 1}
        )
    assert status == 200
    assert "X-Repro-Degraded" not in headers
    assert doc["video_ids"] == ["rec0"]
    counters = _snapshot(router)
    assert counters["requests"] == 1
    assert counters["errors"] == 0
    assert counters["shed"] == 0


def test_custom_retry_after_config():
    admission = AdmissionController(rate=1e-9)
    router = RequestRouter(_OkBackend(), admission=admission)
    config = GatewayConfig(retry_after_seconds=7.0)
    with GatewayThread(ServingGateway(router, config=config)) as server:
        status, headers, _doc = _post_recommend(server.port, {"user_id": "u1"})
    assert status == 503
    assert headers["Retry-After"] == "7"
