"""Tests for the ``repro-serve`` console entry point."""

from __future__ import annotations

import http.client
import json

from repro.serving import GatewayConfig, GatewayThread
from repro.serving.cli import _build_parser, build_demo_gateway


def test_parser_defaults_and_flags():
    args = _build_parser().parse_args([])
    assert args.port == 8080
    assert args.max_connections == 256
    assert args.deadline_ms is None
    assert args.batch_window_ms == 2.0

    args = _build_parser().parse_args(
        [
            "--port", "0",
            "--max-connections", "16",
            "--deadline-ms", "50",
            "--batch-window-ms", "5",
            "--rate", "100",
        ]
    )
    assert args.port == 0
    assert args.max_connections == 16
    assert args.deadline_ms == 50.0
    assert args.batch_window_ms == 5.0
    assert args.rate == 100.0


def test_demo_gateway_serves_end_to_end():
    """The CLI's wiring really serves a trained model over a socket."""
    gateway = build_demo_gateway(
        GatewayConfig(port=0, batch_window_ms=1.0),
        rate=None,
        max_concurrency=None,
        n_users=25,
        n_videos=30,
        seed=7,
    )
    with GatewayThread(gateway) as server:
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
        try:
            conn.request(
                "POST",
                "/recommend",
                body=json.dumps({"user_id": "u0001", "n": 5}),
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            doc = json.loads(response.read())
            assert response.status == 200
            assert len(doc["video_ids"]) > 0

            # Live ingest through the wire reaches the trainer.
            conn.request(
                "POST",
                "/ingest",
                body=json.dumps(
                    {
                        "timestamp": 1e6,
                        "user_id": "u0001",
                        "video_id": doc["video_ids"][0],
                        "action": "click",
                    }
                ),
                headers={"Content-Type": "application/json"},
            )
            ingest = conn.getresponse()
            assert ingest.status == 202
            ingest.read()

            conn.request("GET", "/healthz")
            health = conn.getresponse()
            assert health.status == 200
            health.read()
        finally:
            conn.close()
