"""Tests for the asyncio HTTP serving gateway.

Everything here runs over real sockets on an ephemeral port — the point
of the gateway is the network boundary, so the tests exercise it through
``http.client`` rather than poking coroutine internals.
"""

from __future__ import annotations

import asyncio
import http.client
import json

import pytest

from repro.obs import Observability
from repro.reliability.overload import AdmissionController, CircuitBreaker
from repro.serving import (
    GatewayConfig,
    GatewayThread,
    RecRequest,
    RequestCollector,
    RequestRouter,
    ServingGateway,
)


class _Backend:
    """Deterministic recommender stub; optional per-user failures."""

    def __init__(self, fail_for=None, fail_always=False):
        self.fail_for = fail_for or set()
        self.fail_always = fail_always
        self.calls = []

    def recommend_ids(self, user_id, current_video=None, n=None, now=None):
        self.calls.append(user_id)
        if self.fail_always or user_id in self.fail_for:
            raise RuntimeError("backend exploded")
        return [f"rec{i}" for i in range(n or 10)]


def _request(
    port, method, path, body=None, host="127.0.0.1", timeout=10.0
):
    """One HTTP request via the stdlib client; returns (status, headers, doc)."""
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        payload = json.dumps(body) if body is not None else None
        conn.request(
            method,
            path,
            body=payload,
            headers={"Content-Type": "application/json"} if payload else {},
        )
        response = conn.getresponse()
        raw = response.read()
        doc = json.loads(raw) if raw else {}
        return response.status, dict(response.getheaders()), doc
    finally:
        conn.close()


def _gateway(router, config=None, **kwargs):
    return GatewayThread(
        ServingGateway(router, config=config or GatewayConfig(), **kwargs)
    )


class TestEndpoints:
    def test_recommend_ok(self):
        router = RequestRouter(_Backend())
        with _gateway(router) as server:
            status, headers, doc = _request(
                server.port, "POST", "/recommend", {"user_id": "u1", "n": 3}
            )
        assert status == 200
        assert doc["video_ids"] == ["rec0", "rec1", "rec2"]
        assert doc["scenario"] == "guess_you_like"
        assert "X-Repro-Degraded" not in headers

    def test_recommend_related_scenario(self):
        router = RequestRouter(_Backend())
        with _gateway(router) as server:
            status, _, doc = _request(
                server.port,
                "POST",
                "/recommend",
                {"user_id": "u1", "current_video": "v7"},
            )
        assert status == 200
        assert doc["scenario"] == "related_videos"

    def test_recommend_requires_user_id(self):
        router = RequestRouter(_Backend())
        with _gateway(router) as server:
            status, _, doc = _request(server.port, "POST", "/recommend", {})
        assert status == 400
        assert "user_id" in doc["error"]

    def test_invalid_json_is_400(self):
        router = RequestRouter(_Backend())
        with _gateway(router) as server:
            conn = http.client.HTTPConnection("127.0.0.1", server.port)
            try:
                conn.request("POST", "/recommend", body="{not json")
                response = conn.getresponse()
                assert response.status == 400
            finally:
                conn.close()

    def test_unknown_path_404_wrong_method_405(self):
        router = RequestRouter(_Backend())
        with _gateway(router) as server:
            status_404, _, _ = _request(server.port, "GET", "/nope")
            status_405, _, _ = _request(server.port, "GET", "/recommend")
        assert status_404 == 404
        assert status_405 == 405

    def test_snapshot_reports_router_and_coalescing(self):
        router = RequestRouter(_Backend())
        with _gateway(router) as server:
            _request(server.port, "POST", "/recommend", {"user_id": "u1"})
            status, _, doc = _request(server.port, "GET", "/snapshot")
        assert status == 200
        assert doc["router"]["guess_you_like"]["requests"] == 1
        assert doc["coalescing"]["batches"] == 1
        assert doc["coalescing"]["requests"] == 1
        assert doc["gateway"]["rejected_connections"] == 0

    def test_metrics_serves_registry_document(self):
        obs = Observability.create()
        router = RequestRouter(_Backend(), obs=obs)
        with _gateway(router, obs=obs) as server:
            _request(server.port, "POST", "/recommend", {"user_id": "u1"})
            status, _, doc = _request(server.port, "GET", "/metrics")
        assert status == 200
        assert doc["schema_version"] == 1
        names = set(doc["metrics"])
        assert "serving_requests_total" in names
        assert "gateway_http_requests_total" in names
        assert "gateway_coalesced_batch_size" in names

    def test_metrics_without_obs_is_still_json(self):
        router = RequestRouter(_Backend())
        with _gateway(router) as server:
            status, _, doc = _request(server.port, "GET", "/metrics")
        assert status == 200
        assert doc["metrics"] is None

    def test_ingest_feeds_observe(self):
        seen = []
        router = RequestRouter(_Backend())
        with _gateway(router, observe=seen.append) as server:
            status, _, doc = _request(
                server.port,
                "POST",
                "/ingest",
                {
                    "timestamp": 12.5,
                    "user_id": "u1",
                    "video_id": "v2",
                    "action": "click",
                },
            )
        assert status == 202
        assert doc["ingested"] == 1
        assert len(seen) == 1
        assert seen[0].user_id == "u1"
        assert seen[0].action.value == "click"

    def test_ingest_malformed_action_is_400(self):
        router = RequestRouter(_Backend())
        with _gateway(router, observe=lambda a: None) as server:
            status, _, doc = _request(
                server.port, "POST", "/ingest", {"user_id": "u1"}
            )
        assert status == 400

    def test_ingest_without_sink_is_503(self):
        router = RequestRouter(_Backend())
        with _gateway(router) as server:
            status, _, _ = _request(
                server.port,
                "POST",
                "/ingest",
                {
                    "timestamp": 1.0,
                    "user_id": "u",
                    "video_id": "v",
                    "action": "click",
                },
            )
        assert status == 503


class TestHealthz:
    def test_healthy_gateway_is_200(self):
        router = RequestRouter(_Backend())
        with _gateway(router) as server:
            status, _, doc = _request(server.port, "GET", "/healthz")
        assert status == 200
        assert doc["status"] == "ok"
        assert doc["breaker"] is None

    def test_open_breaker_flips_healthz_to_503(self):
        breaker = CircuitBreaker(failure_threshold=1)
        router = RequestRouter(
            _Backend(fail_always=True), breaker=breaker
        )
        with _gateway(router) as server:
            # Trip the breaker through real traffic, then ask for health.
            _request(server.port, "POST", "/recommend", {"user_id": "u1"})
            status, _, doc = _request(server.port, "GET", "/healthz")
        assert status == 503
        assert doc["status"] == "degraded"
        assert doc["breaker"] == "open"


class TestConnectionLimit:
    def test_excess_connection_gets_503_and_close(self):
        router = RequestRouter(_Backend())
        config = GatewayConfig(max_connections=1)
        with _gateway(router, config=config) as server:
            first = http.client.HTTPConnection(
                "127.0.0.1", server.port, timeout=10.0
            )
            try:
                # Occupy the only slot with a live keep-alive connection.
                first.request(
                    "POST",
                    "/recommend",
                    body=json.dumps({"user_id": "u1"}),
                    headers={"Content-Type": "application/json"},
                )
                assert first.getresponse().read() is not None
                status, headers, doc = _request(server.port, "GET", "/healthz")
                assert status == 503
                assert "Retry-After" in headers
                assert doc["error"] == "too many connections"
            finally:
                first.close()
            # Slot freed: the same request now succeeds.
            status, _, _ = _request(server.port, "GET", "/healthz")
            assert status == 200
            _, _, snap = _request(server.port, "GET", "/snapshot")
            assert snap["gateway"]["rejected_connections"] == 1


class TestKeepAlive:
    def test_many_requests_on_one_connection(self):
        router = RequestRouter(_Backend())
        with _gateway(router) as server:
            conn = http.client.HTTPConnection(
                "127.0.0.1", server.port, timeout=10.0
            )
            try:
                for i in range(5):
                    conn.request(
                        "POST",
                        "/recommend",
                        body=json.dumps({"user_id": f"u{i}"}),
                        headers={"Content-Type": "application/json"},
                    )
                    response = conn.getresponse()
                    assert response.status == 200
                    response.read()
            finally:
                conn.close()
        assert router.total_requests == 5


class TestCollector:
    def _run(self, coro):
        return asyncio.run(coro)

    def test_concurrent_submissions_coalesce(self):
        router = RequestRouter(_Backend())
        collector = RequestCollector(
            router, batch_max=64, window_seconds=0.05
        )

        async def scenario():
            return await asyncio.gather(
                *(collector.submit(RecRequest(f"u{i}")) for i in range(8))
            )

        responses = self._run(scenario())
        assert len(responses) == 8
        assert all(r.ok for r in responses)
        snap = collector.coalesce_snapshot()
        assert snap["batches"] == 1
        assert snap["requests"] == 8
        assert snap["mean_batch_size"] == 8.0

    def test_batch_max_forces_flush(self):
        router = RequestRouter(_Backend())
        collector = RequestCollector(router, batch_max=4, window_seconds=60.0)

        async def scenario():
            return await asyncio.gather(
                *(collector.submit(RecRequest(f"u{i}")) for i in range(4))
            )

        responses = self._run(scenario())
        # Window is a minute; only the size bound can have flushed.
        assert len(responses) == 4
        assert collector.coalesce_snapshot()["max_batch_size"] == 4

    def test_responses_match_requests_in_order(self):
        router = RequestRouter(_Backend(fail_for={"u1"}))
        collector = RequestCollector(router, batch_max=8, window_seconds=0.01)

        async def scenario():
            return await asyncio.gather(
                *(collector.submit(RecRequest(f"u{i}")) for i in range(3))
            )

        responses = self._run(scenario())
        assert [r.request.user_id for r in responses] == ["u0", "u1", "u2"]
        assert responses[0].ok and responses[2].ok
        assert not responses[1].ok  # the failing user failed, others didn't

    def test_rejects_bad_bounds(self):
        router = RequestRouter(_Backend())
        with pytest.raises(ValueError):
            RequestCollector(router, batch_max=0)
        with pytest.raises(ValueError):
            RequestCollector(router, window_seconds=-1.0)


class TestGatewayConfigValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            GatewayConfig(max_connections=0)
        with pytest.raises(ValueError):
            GatewayConfig(batch_window_ms=-1)
        with pytest.raises(ValueError):
            GatewayConfig(batch_max=0)
        with pytest.raises(ValueError):
            GatewayConfig(deadline_ms=-5)


class TestDefaultDeadline:
    def test_config_deadline_applies_when_request_has_none(self):
        captured = []

        class _CapturingRouter(RequestRouter):
            def handle_many(self, requests):
                captured.extend(requests)
                return super().handle_many(requests)

        router = _CapturingRouter(_Backend())
        config = GatewayConfig(deadline_ms=25.0)
        with _gateway(router, config=config) as server:
            _request(server.port, "POST", "/recommend", {"user_id": "u1"})
            _request(
                server.port,
                "POST",
                "/recommend",
                {"user_id": "u2", "deadline_ms": 90.0},
            )
        assert captured[0].deadline_seconds == pytest.approx(0.025)
        assert captured[1].deadline_seconds == pytest.approx(0.090)
