"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    CASConflict,
    ComponentError,
    ConfigError,
    DataError,
    KeyNotFound,
    KVStoreError,
    ModelError,
    ReproError,
    TopologyError,
)


def test_single_catchable_root():
    """Every library error derives from ReproError."""
    for exc_type in (
        ConfigError,
        KVStoreError,
        KeyNotFound,
        CASConflict,
        TopologyError,
        ComponentError,
        DataError,
        ModelError,
    ):
        assert issubclass(exc_type, ReproError)


def test_kvstore_hierarchy():
    assert issubclass(KeyNotFound, KVStoreError)
    assert issubclass(CASConflict, KVStoreError)


def test_key_not_found_carries_key():
    error = KeyNotFound(("user", "u1"))
    assert error.key == ("user", "u1")
    assert "u1" in str(error)


def test_cas_conflict_carries_versions():
    error = CASConflict("k", expected=2, actual=5)
    assert error.expected == 2
    assert error.actual == 5
    assert "2" in str(error) and "5" in str(error)


def test_component_error_wraps_original():
    original = ValueError("inner")
    error = ComponentError("compute_mf", original)
    assert error.component == "compute_mf"
    assert error.original is original
    assert issubclass(ComponentError, TopologyError)


def test_library_failures_catchable_in_one_clause():
    def boom():
        raise DataError("bad row")

    with pytest.raises(ReproError):
        boom()
