"""LatencyStats percentile tracking and its surfacing in snapshots."""

import pytest

from repro.storm.metrics import ComponentMetrics, LatencyStats, TopologyMetrics


class TestLatencyStats:
    def test_empty_stats_report_zero(self):
        stats = LatencyStats()
        assert stats.percentile(50) == 0.0
        assert stats.p50 == stats.p95 == stats.p99 == 0.0
        assert stats.mean == 0.0

    def test_single_sample_is_every_percentile(self):
        stats = LatencyStats()
        stats.record(0.25)
        assert stats.p50 == stats.p95 == stats.p99 == 0.25

    def test_nearest_rank_on_known_distribution(self):
        stats = LatencyStats()
        for ms in range(1, 101):  # 1..100
            stats.record(ms / 1000.0)
        assert stats.p50 == pytest.approx(0.050)
        assert stats.p95 == pytest.approx(0.095)
        assert stats.p99 == pytest.approx(0.099)
        assert stats.percentile(100) == pytest.approx(0.100)
        assert stats.percentile(0) == pytest.approx(0.001)  # nearest rank: min

    def test_percentile_is_order_independent(self):
        ordered, shuffled = LatencyStats(), LatencyStats()
        values = [0.005, 0.001, 0.009, 0.003, 0.007]
        for v in sorted(values):
            ordered.record(v)
        for v in values:
            shuffled.record(v)
        for q in (50, 95, 99):
            assert ordered.percentile(q) == shuffled.percentile(q)

    def test_percentile_validates_quantile(self):
        stats = LatencyStats()
        stats.record(0.001)
        with pytest.raises(ValueError):
            stats.percentile(-1)
        with pytest.raises(ValueError):
            stats.percentile(101)

    def test_sample_reservoir_is_bounded(self):
        stats = LatencyStats(sample_limit=100)
        for i in range(1000):
            stats.record(float(i))
        assert len(stats._samples) <= 100
        assert stats.count == 1000  # aggregate counters keep exact totals
        assert stats.max == 999.0
        assert stats.mean == pytest.approx(sum(range(1000)) / 1000)


class TestMetricsSurfacing:
    def test_component_snapshot_includes_percentiles_and_queue_stats(self):
        metrics = TopologyMetrics()
        comp = metrics.component("bolt_a")
        for ms in (1, 2, 3, 4, 100):
            comp.record_processed(worker=0, seconds=ms / 1000.0)
        comp.record_shed(2)
        comp.record_queue_depth(7)
        comp.record_queue_depth(3)

        snap = metrics.snapshot()["bolt_a"]
        assert snap["processed"] == 5
        assert snap["shed"] == 2
        assert snap["queue_depth"] == 3
        assert snap["max_queue_depth"] == 7
        assert snap["p99_latency_s"] == pytest.approx(0.100)
        assert metrics.total_shed == 2

    def test_component_metrics_defaults(self):
        comp = ComponentMetrics("x")
        assert comp.shed == 0
        assert comp.queue_depth == 0
        assert comp.max_queue_depth == 0
