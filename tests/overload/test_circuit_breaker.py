"""Circuit-breaker state machine tests, including the KV-shard wrapper.

The breaker transitions are driven entirely by recorded outcomes and an
injected clock, so every test here is deterministic: closed -> open after
the configured consecutive-failure threshold, open -> half-open after the
reset timeout, half-open -> closed on probe success / -> open on probe
failure.
"""

import pytest

from repro.clock import VirtualClock
from repro.errors import CircuitOpenError, TransientKVError
from repro.kvstore import BreakerKVStore, InMemoryKVStore
from repro.reliability import BreakerState, CircuitBreaker, FlakyKVStore


def _breaker(clock, **kwargs):
    defaults = dict(failure_threshold=3, reset_timeout=10.0, clock=clock)
    defaults.update(kwargs)
    return CircuitBreaker(**defaults)


class TestStateMachine:
    def test_starts_closed_and_allows(self):
        breaker = _breaker(VirtualClock(0.0))
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()

    def test_opens_after_consecutive_failures(self):
        breaker = _breaker(VirtualClock(0.0))
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()
        assert breaker.opened_count == 1

    def test_success_resets_the_failure_streak(self):
        breaker = _breaker(VirtualClock(0.0))
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED

    def test_open_to_half_open_after_reset_timeout(self):
        clock = VirtualClock(0.0)
        breaker = _breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(9.999)
        assert breaker.state is BreakerState.OPEN
        clock.advance(0.001)
        assert breaker.state is BreakerState.HALF_OPEN

    def test_half_open_probe_budget(self):
        clock = VirtualClock(0.0)
        breaker = _breaker(clock, half_open_max_probes=1)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()  # the single probe
        assert not breaker.allow()  # budget spent, fail fast
        assert breaker.fast_failures >= 1

    def test_half_open_success_closes(self):
        clock = VirtualClock(0.0)
        breaker = _breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_failure_reopens_and_restarts_timeout(self):
        clock = VirtualClock(0.0)
        breaker = _breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert breaker.opened_count == 2
        clock.advance(9.0)
        assert breaker.state is BreakerState.OPEN
        clock.advance(1.0)
        assert breaker.state is BreakerState.HALF_OPEN

    def test_call_fails_fast_when_open(self):
        breaker = _breaker(VirtualClock(0.0), failure_threshold=1)
        with pytest.raises(RuntimeError):
            breaker.call(lambda: (_ for _ in ()).throw(RuntimeError("boom")))
        calls = []
        with pytest.raises(CircuitOpenError):
            breaker.call(lambda: calls.append(1))
        assert calls == []  # the backend was never invoked while open

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_timeout=0.0)


class TestBreakerKVStore:
    """Full cycle against scripted FlakyKVStore faults."""

    def _stack(self, clock, error_every=0):
        inner = InMemoryKVStore()
        flaky = FlakyKVStore(inner, error_every=error_every)
        breaker = CircuitBreaker(
            failure_threshold=3, reset_timeout=5.0, clock=clock, name="kv"
        )
        return inner, flaky, BreakerKVStore(flaky, breaker)

    def test_closed_open_half_open_closed_cycle(self):
        clock = VirtualClock(0.0)
        inner, flaky, store = self._stack(clock)
        store.put("k", 1)
        assert store.get("k") == 1
        assert store.breaker.state is BreakerState.CLOSED

        # Script exactly three consecutive shard faults -> breaker opens.
        flaky.fail_next(3)
        for _ in range(3):
            with pytest.raises(TransientKVError):
                store.get("k")
        assert store.breaker.state is BreakerState.OPEN

        # While open: fail fast without touching the (now healthy) shard.
        ops_before = flaky._ops
        with pytest.raises(CircuitOpenError):
            store.get("k")
        assert flaky._ops == ops_before

        # After the reset timeout a probe goes through and closes it.
        clock.advance(5.0)
        assert store.get("k") == 1
        assert store.breaker.state is BreakerState.CLOSED

    def test_half_open_probe_failure_reopens(self):
        clock = VirtualClock(0.0)
        _, flaky, store = self._stack(clock)
        store.put("k", 1)
        flaky.fail_next(3)
        for _ in range(3):
            with pytest.raises(TransientKVError):
                store.get("k")
        clock.advance(5.0)
        flaky.fail_next(1)  # the probe itself fails
        with pytest.raises(TransientKVError):
            store.get("k")
        assert store.breaker.state is BreakerState.OPEN

    def test_logical_outcomes_do_not_trip_the_breaker(self):
        from repro.errors import KeyNotFound

        clock = VirtualClock(0.0)
        _, _, store = self._stack(clock)
        for _ in range(10):
            with pytest.raises(KeyNotFound):
                store.get_strict("missing")
        assert store.breaker.state is BreakerState.CLOSED

    def test_metadata_bypasses_the_breaker(self):
        clock = VirtualClock(0.0)
        _, flaky, store = self._stack(clock)
        store.put("k", 1)
        flaky.fail_next(3)
        for _ in range(3):
            with pytest.raises(TransientKVError):
                store.put("k", 2)
        assert store.breaker.state is BreakerState.OPEN
        # Recovery/checkpoint paths keep working while the breaker is open.
        assert "k" in store
        assert len(store) == 1
        assert store.version("k") >= 1
        assert list(store.keys()) == ["k"]
