"""ThreadedExecutor backpressure policies and shutdown regression tests."""

import threading
import time

import pytest

from repro.storm import (
    QUEUE_POLICIES,
    Bolt,
    Collector,
    Spout,
    StreamTuple,
    ThreadedExecutor,
    TopologyBuilder,
)


class _CountingSpout(Spout):
    def __init__(self, n):
        self.n = n
        self._i = 0

    def next_tuple(self):
        if self._i >= self.n:
            return None
        self._i += 1
        return StreamTuple({"i": self._i})


class _SlowBolt(Bolt):
    """Processes slowly so the inbound queue fills up."""

    seen = None  # set per-test via class attribute

    def __init__(self, delay=0.0):
        self.delay = delay

    def process(self, tup, collector):
        if self.delay:
            time.sleep(self.delay)
        if _SlowBolt.seen is not None:
            _SlowBolt.seen.append(tup["i"])


class _FailingBolt(Bolt):
    def process(self, tup, collector):
        raise RuntimeError("boom")


def _topology(n_tuples, bolt_factory):
    builder = TopologyBuilder()
    builder.set_spout("src", lambda: _CountingSpout(n_tuples))
    builder.set_bolt("sink", bolt_factory).shuffle_grouping("src")
    return builder.build()


class TestShutdownRegression:
    def test_queue_size_one_completes_shutdown(self):
        """Regression: the final sentinel put used to block forever on a
        full queue; queue_size=1 makes that certain to happen."""
        topo = _topology(50, lambda: _SlowBolt(delay=0.001))
        executor = ThreadedExecutor(topo, queue_size=1)
        done = threading.Event()
        result = {}

        def run():
            result["metrics"] = executor.run(timeout=30.0)
            done.set()

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        assert done.wait(timeout=20.0), "executor shutdown hung"
        assert result["metrics"].component("sink").processed == 50

    def test_queue_size_one_with_failing_bolt_does_not_hang(self):
        """A fail-fast abort with a full queue must still shut down: the
        spout's blocking put is interrupted and the sentinel placed."""
        topo = _topology(500, _FailingBolt)
        executor = ThreadedExecutor(topo, queue_size=1, fail_fast=True)
        done = threading.Event()

        def run():
            with pytest.raises(Exception):
                executor.run(timeout=30.0)
            done.set()

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        assert done.wait(timeout=20.0), "fail-fast shutdown hung"


class TestQueuePolicies:
    def test_invalid_policy_rejected(self):
        topo = _topology(1, lambda: _SlowBolt())
        with pytest.raises(ValueError):
            ThreadedExecutor(topo, queue_policy="drop_everything")
        assert set(QUEUE_POLICIES) == {"block", "shed_newest", "shed_oldest"}

    def test_block_policy_processes_everything(self):
        _SlowBolt.seen = []
        try:
            topo = _topology(200, lambda: _SlowBolt())
            metrics = ThreadedExecutor(
                topo, queue_size=2, queue_policy="block"
            ).run(timeout=30.0)
            assert metrics.component("sink").processed == 200
            assert metrics.total_shed == 0
        finally:
            _SlowBolt.seen = None

    def _run_shedding(self, policy):
        _SlowBolt.seen = []
        try:
            topo = _topology(300, lambda: _SlowBolt(delay=0.002))
            executor = ThreadedExecutor(
                topo, queue_size=2, queue_policy=policy
            )
            metrics = executor.run(timeout=30.0)
            return metrics, list(_SlowBolt.seen)
        finally:
            _SlowBolt.seen = None

    def test_shed_newest_drops_and_counts(self):
        metrics, seen = self._run_shedding("shed_newest")
        sink = metrics.component("sink")
        assert sink.shed > 0
        assert sink.processed + sink.shed == 300
        assert len(seen) == sink.processed

    def test_shed_oldest_keeps_the_freshest_tuples(self):
        metrics, seen = self._run_shedding("shed_oldest")
        sink = metrics.component("sink")
        assert sink.shed > 0
        assert sink.processed + sink.shed == 300
        # Head-drop keeps the latest data flowing: the last source tuple
        # must survive (it can never be evicted once enqueued last).
        assert seen[-1] == 300

    def test_queue_depth_metrics_in_snapshot(self):
        metrics, _ = self._run_shedding("shed_newest")
        snap = metrics.snapshot()["sink"]
        assert snap["max_queue_depth"] >= 1
        assert snap["max_queue_depth"] <= 2
        assert snap["shed"] > 0
        assert "queue_depth" in snap
