"""Unit tests for admission control: token bucket, concurrency, controller."""

import threading

import pytest

from repro.clock import VirtualClock
from repro.reliability import AdmissionController, ConcurrencyLimiter, TokenBucket
from repro.reliability.overload import SHED_CONCURRENCY, SHED_RATE


class TestTokenBucket:
    def test_starts_full_and_drains(self):
        bucket = TokenBucket(rate=10.0, capacity=3, clock=VirtualClock(0.0))
        assert [bucket.try_acquire() for _ in range(4)] == [
            True,
            True,
            True,
            False,
        ]

    def test_refills_at_rate_on_injected_clock(self):
        clock = VirtualClock(0.0)
        bucket = TokenBucket(rate=2.0, capacity=2, clock=clock)
        assert bucket.try_acquire() and bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.advance(0.5)  # 1 token back at 2 tokens/s
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refill_caps_at_capacity(self):
        clock = VirtualClock(0.0)
        bucket = TokenBucket(rate=100.0, capacity=5, clock=clock)
        clock.advance(1000.0)
        assert bucket.available == pytest.approx(5.0)

    def test_deterministic_admission_schedule(self):
        """At 2x offered load, exactly every other request is admitted
        once the burst is spent — bit-for-bit reproducible."""
        clock = VirtualClock(0.0)
        bucket = TokenBucket(rate=10.0, capacity=1, clock=clock)
        outcomes = []
        for _ in range(20):
            outcomes.append(bucket.try_acquire())
            clock.advance(0.05)  # 20 arrivals/s against 10 tokens/s
        assert outcomes == [True, False] * 10

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, capacity=0)


class TestConcurrencyLimiter:
    def test_cap_and_release(self):
        limiter = ConcurrencyLimiter(2)
        assert limiter.try_acquire() and limiter.try_acquire()
        assert not limiter.try_acquire()
        limiter.release()
        assert limiter.try_acquire()

    def test_release_underflow_raises(self):
        limiter = ConcurrencyLimiter(1)
        with pytest.raises(RuntimeError):
            limiter.release()

    def test_thread_safety_never_exceeds_limit(self):
        limiter = ConcurrencyLimiter(3)
        high_water = [0]
        lock = threading.Lock()

        def worker():
            for _ in range(200):
                if limiter.try_acquire():
                    with lock:
                        high_water[0] = max(high_water[0], limiter.inflight)
                    limiter.release()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert high_water[0] <= 3
        assert limiter.inflight == 0


class TestAdmissionController:
    def test_requires_some_limit(self):
        with pytest.raises(ValueError):
            AdmissionController()

    def test_rate_shed_reason(self):
        controller = AdmissionController(
            rate=1.0, burst=1, clock=VirtualClock(0.0)
        )
        assert controller.try_admit().admitted
        decision = controller.try_admit()
        assert not decision.admitted
        assert decision.reason == SHED_RATE
        assert controller.shed_rate == 1

    def test_concurrency_shed_reason_and_release(self):
        controller = AdmissionController(max_concurrency=1)
        assert controller.try_admit().admitted
        decision = controller.try_admit()
        assert not decision.admitted
        assert decision.reason == SHED_CONCURRENCY
        controller.release()
        assert controller.try_admit().admitted
        assert controller.admitted == 2
        assert controller.shed == 1

    def test_rate_check_runs_before_concurrency(self):
        """A rate-shed request must not consume a concurrency slot."""
        controller = AdmissionController(
            rate=1.0, burst=1, max_concurrency=5, clock=VirtualClock(0.0)
        )
        controller.try_admit()
        for _ in range(10):
            assert not controller.try_admit().admitted
        assert controller.shed_concurrency == 0
        assert controller.shed_rate == 10
