"""Ingest hygiene: SanitizeBolt, dead-letter queue, chaos dedup equivalence."""

import json

import pytest

from repro.clock import VirtualClock
from repro.data.schema import ActionType, UserAction
from repro.reliability import (
    REASON_DUPLICATE,
    REASON_LATE,
    REASON_MALFORMED,
    DeadLetterStore,
    FaultPlan,
    wrap_topology,
)
from repro.storm import Collector, LocalExecutor, StreamTuple
from repro.topology import (
    SANITIZE,
    SANITIZED_STREAM,
    IngestConfig,
    SanitizeBolt,
    build_recommendation_topology,
)


def _action(ts, user="u1", video="v1", kind=ActionType.PLAY, view=0.0):
    return UserAction(
        timestamp=ts, user_id=user, video_id=video, action=kind, view_time=view
    )


def _process(bolt, payload):
    collector = Collector()
    bolt.process(StreamTuple({"raw": payload}), collector)
    return collector.drain()


class TestSanitizeBolt:
    def test_clean_actions_pass_through_on_the_actions_stream(self):
        bolt = SanitizeBolt(DeadLetterStore())
        out = _process(bolt, _action(10.0))
        assert len(out) == 1
        assert out[0].stream == SANITIZED_STREAM
        assert out[0]["user"] == "u1" and out[0]["video"] == "v1"
        assert bolt.accepted == 1

    def test_raw_log_lines_are_parsed(self):
        bolt = SanitizeBolt(DeadLetterStore())
        out = _process(bolt, _action(10.0).to_log_line())
        assert len(out) == 1
        assert out[0]["action"].user_id == "u1"

    def test_malformed_line_goes_to_dlq_with_reason(self):
        dlq = DeadLetterStore()
        bolt = SanitizeBolt(dlq)
        assert _process(bolt, "not\ta\tvalid\tline") == []
        assert _process(bolt, "nonsense") == []
        assert dlq.counts() == {REASON_MALFORMED: 2}
        assert bolt.rejected == 2

    def test_duplicate_within_window_goes_to_dlq(self):
        dlq = DeadLetterStore()
        bolt = SanitizeBolt(dlq, dedup_window_seconds=100.0)
        assert len(_process(bolt, _action(10.0))) == 1
        assert _process(bolt, _action(10.0)) == []  # identical event
        assert dlq.counts() == {REASON_DUPLICATE: 1}
        record = dlq.records(REASON_DUPLICATE)[0]
        assert record.payload.user_id == "u1"

    def test_same_event_outside_window_is_not_a_duplicate(self):
        dlq = DeadLetterStore()
        bolt = SanitizeBolt(dlq, dedup_window_seconds=50.0)
        first = _action(10.0)
        assert len(_process(bolt, first)) == 1
        # Advance the watermark far enough that the key is evicted...
        assert len(_process(bolt, _action(100.0, video="v2"))) == 1
        # ...then the "same" event is allowed through again (but is now
        # late-checked against the watermark, so keep lateness ample).
        bolt.max_lateness_seconds = 1000.0
        assert len(_process(bolt, first)) == 1
        assert dlq.counts() == {}

    def test_distinct_events_are_not_deduplicated(self):
        bolt = SanitizeBolt(DeadLetterStore())
        assert len(_process(bolt, _action(10.0))) == 1
        assert len(_process(bolt, _action(10.0, video="v2"))) == 1
        assert len(_process(bolt, _action(10.5))) == 1
        assert bolt.accepted == 3

    def test_too_late_event_goes_to_dlq(self):
        dlq = DeadLetterStore()
        bolt = SanitizeBolt(dlq, max_lateness_seconds=60.0)
        assert len(_process(bolt, _action(1000.0))) == 1  # watermark=1000
        assert len(_process(bolt, _action(950.0, video="v2"))) == 1  # in bound
        assert _process(bolt, _action(939.0, video="v3")) == []  # 61s late
        assert dlq.counts() == {REASON_LATE: 1}
        assert "behind the watermark" in dlq.records(REASON_LATE)[0].detail

    def test_late_events_never_move_the_watermark_backwards(self):
        bolt = SanitizeBolt(DeadLetterStore(), max_lateness_seconds=60.0)
        _process(bolt, _action(1000.0))
        _process(bolt, _action(950.0, video="v2"))
        assert bolt.watermark == 1000.0

    def test_dedup_memory_is_bounded_by_max_keys(self):
        bolt = SanitizeBolt(
            DeadLetterStore(),
            dedup_window_seconds=1e9,
            dedup_max_keys=10,
        )
        for i in range(100):
            _process(bolt, _action(float(i), video=f"v{i}"))
        assert len(bolt._seen) <= 10


class TestDeadLetterStore:
    def test_bounded_and_evicts_oldest(self):
        dlq = DeadLetterStore(max_records=3, clock=VirtualClock(5.0))
        for i in range(5):
            dlq.add(REASON_MALFORMED, f"line{i}")
        assert len(dlq) == 3
        assert [r.payload for r in dlq.records()] == ["line2", "line3", "line4"]
        assert dlq.records()[0].recorded_at == 5.0

    def test_replay_drains_selected_reasons(self):
        dlq = DeadLetterStore()
        dlq.add(REASON_MALFORMED, "bad")
        dlq.add(REASON_LATE, _action(1.0))
        dlq.add(REASON_LATE, _action(2.0))
        replayed = []
        count = dlq.replay(replayed.append, reasons=[REASON_LATE])
        assert count == 2
        assert [a.timestamp for a in replayed] == [1.0, 2.0]
        # Non-selected records stay queued.
        assert dlq.counts() == {REASON_MALFORMED: 1}

    def test_replay_failure_keeps_unhandled_records(self):
        dlq = DeadLetterStore()
        for i in range(3):
            dlq.add(REASON_LATE, i)

        def explode_on_1(payload):
            if payload == 1:
                raise RuntimeError("handler broke")

        with pytest.raises(RuntimeError):
            dlq.replay(explode_on_1)
        # 0 was handled; 1 (failed) and 2 (unreached) remain.
        assert [r.payload for r in dlq.records()] == [1, 2]

    def test_jsonl_disk_mirror(self, tmp_path):
        path = tmp_path / "dlq" / "dead_letters.jsonl"
        dlq = DeadLetterStore(path=path, clock=VirtualClock(7.0))
        dlq.add(REASON_MALFORMED, "garbage line", detail="parse error")
        dlq.add(REASON_DUPLICATE, _action(3.0))
        rows = DeadLetterStore.load_jsonl(path)
        assert len(rows) == 2
        assert rows[0]["reason"] == REASON_MALFORMED
        assert rows[0]["payload"] == "garbage line"
        assert rows[1]["reason"] == REASON_DUPLICATE
        assert rows[1]["recorded_at"] == 7.0

    def test_reopen_repairs_torn_final_line(self, tmp_path):
        """Regression: a crash mid-append leaves half a JSON line; reopening
        the mirror must truncate it (keeping every complete record) so new
        appends do not glue onto the torn fragment."""
        path = tmp_path / "dead_letters.jsonl"
        dlq = DeadLetterStore(path=path, clock=VirtualClock(1.0))
        dlq.add(REASON_MALFORMED, "first")
        dlq.add(REASON_LATE, "second")
        with path.open("a", encoding="utf-8") as fh:
            fh.write('{"reason": "malformed", "pay')  # crash mid-append

        reopened = DeadLetterStore(path=path, clock=VirtualClock(2.0))
        reopened.add(REASON_DUPLICATE, "after-crash")
        rows = DeadLetterStore.load_jsonl(path)
        assert [r["payload"] for r in rows] == [
            "first",
            "second",
            "after-crash",
        ]

    def test_load_jsonl_tolerates_torn_tail_without_reopen(self, tmp_path):
        """Inspection must work on a crashed process's mirror as-is."""
        path = tmp_path / "dead_letters.jsonl"
        dlq = DeadLetterStore(path=path, clock=VirtualClock(1.0))
        dlq.add(REASON_MALFORMED, "only-complete-record")
        with path.open("a", encoding="utf-8") as fh:
            fh.write('{"torn": tru')
        rows = DeadLetterStore.load_jsonl(path)
        assert [r["payload"] for r in rows] == ["only-complete-record"]

    def test_load_jsonl_interior_corruption_still_raises(self, tmp_path):
        path = tmp_path / "dead_letters.jsonl"
        path.write_text(
            '{"payload": "ok"}\nnot json at all\n{"payload": "ok2"}\n',
            encoding="utf-8",
        )
        with pytest.raises(json.JSONDecodeError):
            DeadLetterStore.load_jsonl(path)


def _top_n(system, video="v1", n=5):
    return [v for v, _ in system.table.neighbors(video, k=n)]


class TestPipelineIntegration:
    def _world(self, small_world, small_actions):
        return small_world.videos, list(small_actions[:400])

    def test_caller_supplied_empty_dlq_is_used_not_replaced(self, small_world):
        """Regression: an empty DeadLetterStore is falsy (__len__), so the
        wiring must check identity, not truthiness."""
        dlq = DeadLetterStore()
        _, system = build_recommendation_topology(
            [], small_world.videos, ingest=IngestConfig(), dead_letters=dlq
        )
        assert system.dead_letters is dlq

    def test_sanitized_topology_trains_like_a_clean_one(
        self, small_world, small_actions
    ):
        videos, actions = self._world(small_world, small_actions)
        clock = VirtualClock(actions[-1].timestamp + 1)

        plain_topo, plain = build_recommendation_topology(
            actions, videos, clock=clock
        )
        LocalExecutor(plain_topo).run()

        sane_topo, sane = build_recommendation_topology(
            actions, videos, clock=clock, ingest=IngestConfig()
        )
        assert SANITIZE in sane_topo.components
        LocalExecutor(sane_topo).run()

        assert len(sane.dead_letters) == 0  # clean stream: nothing rejected
        for video in list(videos)[:10]:
            assert _top_n(sane, video) == _top_n(plain, video)

    def test_bad_tuples_are_excluded_from_model_and_land_in_dlq(
        self, small_world, small_actions
    ):
        videos, actions = self._world(small_world, small_actions)
        clock = VirtualClock(actions[-1].timestamp + 1)

        clean_topo, clean = build_recommendation_topology(
            actions, videos, clock=clock, ingest=IngestConfig()
        )
        LocalExecutor(clean_topo).run()

        # Pollute the stream: exact duplicates, a hopelessly late replay,
        # and malformed garbage, interleaved with the clean actions.
        polluted = []
        n_dupes = n_malformed = 0
        for i, action in enumerate(actions):
            polluted.append(action)
            if i % 10 == 0:
                polluted.append(action)  # duplicate
                n_dupes += 1
            if i % 25 == 0:
                polluted.append("corrupt\tgarbage")
                n_malformed += 1
        stale = UserAction(
            timestamp=actions[0].timestamp - 10 * 86400.0,
            user_id="u_stale",
            video_id=actions[0].video_id,
            action=ActionType.PLAY,
        )
        polluted.append(stale)

        dirty_topo, dirty = build_recommendation_topology(
            polluted,
            videos,
            clock=clock,
            ingest=IngestConfig(max_lateness_seconds=7 * 86400.0),
        )
        LocalExecutor(dirty_topo).run()

        counts = dirty.dead_letters.counts()
        assert counts[REASON_DUPLICATE] == n_dupes
        assert counts[REASON_MALFORMED] == n_malformed
        assert counts[REASON_LATE] == 1
        # The model never saw the garbage: same top-N as the clean run.
        for video in list(videos)[:10]:
            assert _top_n(dirty, video) == _top_n(clean, video)
        # The stale user contributed nothing.
        assert "u_stale" not in dirty.history

    def test_chaos_redelivery_produces_same_top_n_as_clean_run(
        self, small_world, small_actions
    ):
        """At-least-once redelivery at the ingest stage is fully absorbed
        by the dedup window: model state is bit-identical."""
        videos, actions = self._world(small_world, small_actions)
        clock = VirtualClock(actions[-1].timestamp + 1)

        clean_topo, clean = build_recommendation_topology(
            actions, videos, clock=clock, ingest=IngestConfig()
        )
        LocalExecutor(clean_topo).run()

        chaos_topo, chaotic = build_recommendation_topology(
            actions, videos, clock=clock, ingest=IngestConfig()
        )
        chaos_topo = wrap_topology(
            chaos_topo,
            FaultPlan(seed=7, redeliver_rate=0.3),
            components=[SANITIZE],
        )
        LocalExecutor(chaos_topo).run()

        dupes = chaotic.dead_letters.counts().get(REASON_DUPLICATE, 0)
        assert dupes > 0  # chaos actually injected redeliveries
        for video in list(videos)[:10]:
            assert _top_n(chaotic, video) == _top_n(clean, video)
