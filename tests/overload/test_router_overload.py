"""Router overload behaviour: saturation shedding, deadlines, breaker failover.

Everything runs on a shared :class:`~repro.clock.VirtualClock`: the
backend "takes time" by advancing the clock, the admission bucket refills
on the same clock, and the offered-load generator spaces arrivals exactly
``1/qps`` apart — so every assertion below (shed counts, p99 bounds) is
exact and reproducible.
"""

import pytest

from repro.clock import VirtualClock
from repro.errors import CircuitOpenError
from repro.reliability import AdmissionController, CircuitBreaker
from repro.serving import (
    LoadGenerator,
    Outcome,
    RecRequest,
    RequestRouter,
    Scenario,
)


class _SimulatedBackend:
    """A backend whose service time is simulated on the virtual clock."""

    def __init__(self, clock, service_time=0.0, fail=False):
        self.clock = clock
        self.service_time = service_time
        self.fail = fail
        self.calls = 0

    def recommend_ids(self, user_id, current_video=None, n=None, now=None):
        self.calls += 1
        if self.service_time:
            self.clock.advance(self.service_time)
        if self.fail:
            raise RuntimeError("backend down")
        return [f"v{i}" for i in range(n or 10)]


class TestShedOutcome:
    def test_shed_is_distinct_from_error_and_degraded(self):
        clock = VirtualClock(0.0)
        router = RequestRouter(
            _SimulatedBackend(clock),
            admission=AdmissionController(rate=1.0, burst=1, clock=clock),
            clock=clock,
        )
        ok = router.handle(RecRequest("u1"))
        assert ok.outcome is Outcome.OK
        shed = router.handle(RecRequest("u1"))
        assert shed.outcome is Outcome.SHED
        assert shed.shed and not shed.ok and shed.error is None
        assert shed.shed_reason == "rate"
        stats = router.stats(Scenario.GUESS_YOU_LIKE)
        assert stats.shed == 1 and stats.errors == 0

    def test_shed_request_never_reaches_the_backend(self):
        clock = VirtualClock(0.0)
        backend = _SimulatedBackend(clock)
        router = RequestRouter(
            backend,
            admission=AdmissionController(rate=1.0, burst=1, clock=clock),
            clock=clock,
        )
        router.handle(RecRequest("u1"))
        router.handle(RecRequest("u1"))
        assert backend.calls == 1

    def test_snapshot_exposes_shed_and_percentiles(self):
        clock = VirtualClock(0.0)
        router = RequestRouter(
            _SimulatedBackend(clock, service_time=0.004),
            admission=AdmissionController(rate=1.0, burst=2, clock=clock),
            clock=clock,
        )
        for _ in range(3):
            router.handle(RecRequest("u1"))
        snap = router.snapshot()[Scenario.GUESS_YOU_LIKE.value]
        assert snap["requests"] == 3
        assert snap["shed"] == 1
        assert snap["p99_latency_ms"] == pytest.approx(4.0)
        assert snap["p50_latency_ms"] == pytest.approx(4.0)


class TestSaturation:
    """The acceptance demo: capacity C, offered load 2C."""

    CAPACITY = 100.0  # requests per second

    def _run(self, offered_qps, n_requests=400):
        clock = VirtualClock(0.0)
        backend = _SimulatedBackend(clock, service_time=0.002)
        router = RequestRouter(
            backend,
            admission=AdmissionController(
                rate=self.CAPACITY, burst=10, clock=clock
            ),
            clock=clock,
        )
        generator = LoadGenerator(router, ["u1", "u2", "u3"], ["v1", "v2"])
        report = generator.run_offered(n_requests, qps=offered_qps, clock=clock)
        return router, report

    def test_unsaturated_baseline_sheds_nothing(self):
        router, report = self._run(offered_qps=self.CAPACITY * 0.5)
        assert report.shed == 0
        assert report.errors == 0
        assert report.accepted == report.requests

    def test_twice_capacity_sheds_excess_and_bounds_p99(self):
        _, baseline = self._run(offered_qps=self.CAPACITY * 0.5)
        router, saturated = self._run(offered_qps=self.CAPACITY * 2)

        # Excess traffic is shed, nothing raises, everything is accounted.
        assert saturated.shed > 0
        assert saturated.errors == 0
        assert (
            saturated.accepted + saturated.shed + saturated.deadline_exceeded
            == saturated.requests
        )
        # Roughly half the offered load fits through the token bucket.
        assert saturated.accepted == pytest.approx(
            saturated.requests / 2, rel=0.15
        )
        # The headline guarantee: accepted-request p99 stays within 2x of
        # the unsaturated baseline (here they are identical — shedding
        # keeps the served path entirely congestion-free).
        assert saturated.p99_latency_ms <= 2 * baseline.p99_latency_ms
        assert router.total_shed == saturated.shed

    def test_offered_load_is_open_loop(self):
        """Arrivals stay on the offered schedule even while shedding."""
        _, r1 = self._run(offered_qps=200.0, n_requests=200)
        # 199 inter-arrival gaps of 5ms, plus at most one service time.
        assert r1.elapsed_seconds == pytest.approx(199 * 0.005, abs=0.005)


class TestDeadlines:
    def test_deadline_leaves_budget_for_fallback(self):
        """A slow-but-failing primary must not eat the fallback's time."""
        clock = VirtualClock(0.0)
        primary = _SimulatedBackend(clock, service_time=0.030, fail=True)
        fallback = _SimulatedBackend(clock, service_time=0.001)
        router = RequestRouter(primary, fallback=fallback, clock=clock)
        response = router.handle(RecRequest("u1", deadline_seconds=0.050))
        assert response.outcome is Outcome.DEGRADED
        assert response.video_ids

    def test_deadline_exceeded_counted_separately(self):
        clock = VirtualClock(0.0)
        primary = _SimulatedBackend(clock, service_time=0.080, fail=True)
        fallback = _SimulatedBackend(clock, service_time=0.001)
        router = RequestRouter(primary, fallback=fallback, clock=clock)
        response = router.handle(RecRequest("u1", deadline_seconds=0.050))
        assert response.outcome is Outcome.DEADLINE_EXCEEDED
        assert response.deadline_exceeded and not response.ok
        assert response.error is None  # a deadline miss is not an error
        assert fallback.calls == 0  # no budget left, fallback skipped
        stats = router.stats(Scenario.GUESS_YOU_LIKE)
        assert stats.deadline_exceeded == 1
        assert stats.errors == 0

    def test_no_deadline_means_unbounded_budget(self):
        clock = VirtualClock(0.0)
        primary = _SimulatedBackend(clock, service_time=10.0, fail=True)
        fallback = _SimulatedBackend(clock)
        router = RequestRouter(primary, fallback=fallback, clock=clock)
        assert router.handle(RecRequest("u1")).outcome is Outcome.DEGRADED


class TestPrimaryBreakerFailover:
    def test_open_breaker_skips_primary_and_serves_fallback_fast(self):
        clock = VirtualClock(0.0)
        primary = _SimulatedBackend(clock, service_time=0.050, fail=True)
        fallback = _SimulatedBackend(clock, service_time=0.001)
        breaker = CircuitBreaker(
            failure_threshold=3, reset_timeout=30.0, clock=clock
        )
        router = RequestRouter(
            primary, fallback=fallback, breaker=breaker, clock=clock
        )

        # Three failures trip the breaker; each costs the primary's 50ms.
        for _ in range(3):
            response = router.handle(RecRequest("u1"))
            assert response.outcome is Outcome.DEGRADED
            assert response.latency_seconds >= 0.050

        # Open: the primary is skipped entirely -> fast degraded serving.
        calls_before = primary.calls
        response = router.handle(RecRequest("u1"))
        assert response.outcome is Outcome.DEGRADED
        assert primary.calls == calls_before
        assert response.latency_seconds == pytest.approx(0.001)
        stats = router.stats(Scenario.GUESS_YOU_LIKE)
        assert stats.breaker_fast_fails == 1

        # Recovery: after the reset timeout the primary is probed again.
        primary.fail = False
        clock.advance(30.0)
        response = router.handle(RecRequest("u1"))
        assert response.outcome is Outcome.OK
        assert primary.calls == calls_before + 1

    def test_breaker_without_fallback_reports_error(self):
        clock = VirtualClock(0.0)
        primary = _SimulatedBackend(clock, fail=True)
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout=30.0, clock=clock
        )
        router = RequestRouter(primary, breaker=breaker, clock=clock)
        router.handle(RecRequest("u1"))
        response = router.handle(RecRequest("u1"))
        assert response.outcome is Outcome.ERROR
        assert CircuitOpenError.__name__ in response.error
