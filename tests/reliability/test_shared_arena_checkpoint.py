"""Checkpoint/recovery over the shared-memory model backend.

A checkpoint taken while worker processes are live must read a coherent
arena state: ``export_shared`` copies each arena under its exclusive
lock, so no SGD write can tear the snapshot.  The exported form is plain
(no shared-memory handles), so it flows through the existing
``CheckpointManager`` machinery unchanged and restores into a *fresh*
shared block with byte-identical predictions.
"""

import multiprocessing as mp

import numpy as np
import pytest

from repro.config import MFConfig
from repro.core import MFModel, SharedModelState
from repro.kvstore import InMemoryKVStore
from repro.reliability import CheckpointManager

F = 6


def _train(model: MFModel, n: int, seed: int = 5) -> None:
    import random

    rng = random.Random(seed)
    for _ in range(n):
        model.sgd_step(
            f"u{rng.randrange(12)}",
            f"v{rng.randrange(30)}",
            float(rng.randrange(2)),
            eta=0.05,
        )


def _predictions(model: MFModel) -> dict[str, np.ndarray]:
    videos = sorted(model._shared.video.ids())
    return {
        u: model.predict_many(u, videos)
        for u in sorted(model._shared.user.ids())
    }


def test_export_shared_checkpoints_and_restores_byte_identical(tmp_path):
    state = SharedModelState.create(f=F)
    try:
        model = MFModel(MFConfig(f=F, seed=11), shared=state)
        _train(model, 400)
        expected = _predictions(model)
        expected_mu = model.mu

        store = InMemoryKVStore()
        store.put(("mf", "shared-snapshot"), model.export_shared())
        manager = CheckpointManager(tmp_path / "ckpts", fsync=False)
        info = manager.create(store, metadata={"mf_backend": model.backend})
        assert info.metadata == {"mf_backend": "shared"}
    finally:
        state.unlink()

    # "Crash": the shared block above is gone.  Restore into a fresh one.
    restored_store = InMemoryKVStore()
    manager.restore(info, restored_store)
    fresh = SharedModelState.create(f=F)
    try:
        clone = MFModel(MFConfig(f=F, seed=11), shared=fresh)
        clone.load_shared(restored_store.get(("mf", "shared-snapshot")))
        assert clone.mu == expected_mu
        got = _predictions(clone)
        assert sorted(got) == sorted(expected)
        for user, preds in expected.items():
            np.testing.assert_array_equal(got[user], preds)
    finally:
        fresh.unlink()


def _hammer(names, stop) -> None:
    state = SharedModelState.attach(names)
    model = MFModel(MFConfig(f=F, seed=11), shared=state)
    i = 0
    while not stop.is_set():
        model.sgd_step(f"u{i % 8}", f"v{i % 16}", float(i % 2), eta=0.05)
        i += 1
    state.close()


@pytest.mark.multiprocess
def test_checkpoint_under_concurrent_writes_is_coherent(tmp_path):
    """Snapshots taken while another process trains are never torn.

    Coherence witness: round-trip each snapshot through ``load_shared``
    into a scratch block and verify every row reads back exactly — a
    torn copy would fail the array equality somewhere.
    """
    state = SharedModelState.create(f=F)
    scratch = SharedModelState.create(f=F)
    ctx = mp.get_context("fork")
    stop = ctx.Event()
    proc = ctx.Process(target=_hammer, args=(state.names, stop))
    proc.start()
    try:
        model = MFModel(MFConfig(f=F, seed=11), shared=state)
        scratch_model = MFModel(MFConfig(f=F, seed=11), shared=scratch)
        manager = CheckpointManager(tmp_path / "ckpts", fsync=False)
        for round_no in range(10):
            export = model.export_shared()
            store = InMemoryKVStore()
            store.put(("mf", "shared-snapshot"), export)
            info = manager.create(store)

            restored = InMemoryKVStore()
            manager.restore(info, restored)
            scratch_model.load_shared(
                restored.get(("mf", "shared-snapshot"))
            )
            for kind in ("user", "video"):
                snap = export[kind]
                arena = scratch.arena(kind)
                assert sorted(arena.ids()) == sorted(snap.ids())
                for eid in snap.ids():
                    np.testing.assert_array_equal(
                        arena.vector(eid), snap.vector(eid)
                    )
                    assert arena.bias(eid) == snap.bias(eid)
            total, count = export["mu"]
            assert scratch.mu_state() == (total, count)
            assert count >= 0
    finally:
        stop.set()
        proc.join(timeout=30)
        if proc.is_alive():  # pragma: no cover - safety net
            proc.terminate()
            proc.join(timeout=10)
        state.unlink()
        scratch.unlink()
    assert proc.exitcode == 0
