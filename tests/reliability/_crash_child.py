"""Victim process for the crash-injection suite (run via subprocess).

Two modes, both writing under a data root the parent owns and acking
progress on stdout (one line per completed, durable operation).  The
parent SIGKILLs this process at an arbitrary point — there is no signal
handler and no cleanup — then verifies that everything acked before the
kill is recoverable from disk.

``kv`` mode::

    python _crash_child.py kv <root> [--limit N]

Appends ``put("k<i>", ("k<i>", <i>))`` to a ``DurableKVStore`` opened
with ``fsync="always"`` and prints ``ACK <i>`` after each put returns —
i.e. after the record is fsynced.

``rec`` mode::

    python _crash_child.py rec <root> [--limit N] [--checkpoint-every K]

Feeds the deterministic synthetic action stream through a
``RealtimeRecommender`` over a ``ReadThroughCache(DurableKVStore)`` tier
with a WAL (``fsync=True``), taking an incremental checkpoint every K
actions, printing ``ACK <seq>`` after each observe.  The WAL append
happens (and is fsynced) *before* the model applies the action, so an
acked sequence number is always replayable.
"""

import argparse
import sys
from pathlib import Path

from repro.core.recommender import RealtimeRecommender
from repro.data import SyntheticWorld
from repro.data.synthetic import WorldConfig
from repro.kvstore import DurableKVStore, ReadThroughCache
from repro.reliability import ActionWAL, CheckpointManager, RecoveryManager

# The parent builds the identical world to verify against.
WORLD = dict(n_users=60, n_videos=80, n_types=5, days=3, seed=42)
SEGMENT_MAX_BYTES = 16 * 1024


def _ack(n: int) -> None:
    sys.stdout.write(f"ACK {n}\n")
    sys.stdout.flush()


def run_kv(root: Path, limit: int) -> None:
    store = DurableKVStore(
        root / "kv",
        fsync="always",
        segment_max_bytes=SEGMENT_MAX_BYTES,
    )
    for i in range(limit):
        store.put(f"k{i}", (f"k{i}", i))
        _ack(i)


def run_rec(root: Path, limit: int, checkpoint_every: int) -> None:
    world = SyntheticWorld(WorldConfig(**WORLD))
    actions = world.generate_actions()[:limit]

    durable = DurableKVStore(
        root / "kv", fsync="interval", segment_max_bytes=SEGMENT_MAX_BYTES
    )
    tier = ReadThroughCache(durable, capacity=512)
    wal = ActionWAL(root / "wal", segment_max_records=64, fsync=True)
    recovery = RecoveryManager(CheckpointManager(root / "ckpt"), wal)
    recommender = RealtimeRecommender(
        world.videos, enable_demographic=False, store=tier, wal=wal
    )
    # Baseline cut at seq 0 so recovery always has a consistent segment
    # set to roll back to, even if we die before the first periodic one.
    recovery.checkpoint(tier, incremental=True)
    for count, action in enumerate(actions, start=1):
        recommender.observe(action)
        _ack(count)
        if count % checkpoint_every == 0:
            recovery.checkpoint(tier, incremental=True)


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("mode", choices=("kv", "rec"))
    parser.add_argument("root", type=Path)
    parser.add_argument("--limit", type=int, default=1_000_000)
    parser.add_argument("--checkpoint-every", type=int, default=60)
    args = parser.parse_args()
    if args.mode == "kv":
        run_kv(args.root, args.limit)
    else:
        run_rec(args.root, args.limit, args.checkpoint_every)
    sys.stdout.write("DONE\n")
    sys.stdout.flush()


if __name__ == "__main__":
    main()
