"""Supervisor tests: bounded restarts, backoff, executor integration."""

import pytest

from repro.errors import ComponentError
from repro.reliability import RetryPolicy, Supervisor
from repro.storm import (
    Bolt,
    LocalExecutor,
    Spout,
    StreamTuple,
    ThreadedExecutor,
    TopologyBuilder,
)

_NO_SLEEP = lambda seconds: None  # noqa: E731 - test shorthand


class RangeSpout(Spout):
    def __init__(self, n):
        self.n = n
        self.pos = 0

    def next_tuple(self):
        if self.pos >= self.n:
            return None
        tup = StreamTuple({"i": self.pos})
        self.pos += 1
        return tup


class CrashOnceBolt(Bolt):
    """Crashes exactly once per cursed tuple, then lets it through.

    The retried delivery after a worker restart succeeds, so under
    supervision every tuple eventually goes through.  ``crashes`` is the
    shared memory of which tuples already crashed a worker (instances
    come and go as workers restart).
    """

    def __init__(self, sink, crashes, every=5):
        self.sink = sink
        self.crashes = crashes
        self.every = every

    def process(self, tup, collector):
        i = tup["i"]
        if i % self.every == 0 and i not in self.crashes:
            self.crashes.append(i)
            raise RuntimeError("worker croaked")
        self.sink.append(i)


class AlwaysFailBolt(Bolt):
    def process(self, tup, collector):
        raise RuntimeError("poisoned")


class TestRetryPolicy:
    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(
            backoff_base=0.1, backoff_factor=2.0, backoff_cap=0.5
        )
        assert policy.backoff(0) == pytest.approx(0.1)
        assert policy.backoff(1) == pytest.approx(0.2)
        assert policy.backoff(2) == pytest.approx(0.4)
        assert policy.backoff(3) == pytest.approx(0.5)  # capped
        assert policy.backoff(10) == pytest.approx(0.5)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_restarts=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)

    def test_budget_is_per_worker(self):
        supervisor = Supervisor(RetryPolicy(max_restarts=1), sleep=_NO_SLEEP)
        exc = RuntimeError("x")
        assert supervisor.should_restart("b", 0, exc)
        assert not supervisor.should_restart("b", 0, exc)
        # A different worker of the same component has its own budget.
        assert supervisor.should_restart("b", 1, exc)
        assert supervisor.restarts("b") == 2
        assert supervisor.gave_up("b") == 1

    def test_sleep_receives_backoff_sequence(self):
        slept = []
        policy = RetryPolicy(
            max_restarts=3, backoff_base=0.01, backoff_factor=2.0,
            backoff_cap=10.0,
        )
        supervisor = Supervisor(policy, sleep=slept.append)
        for _ in range(3):
            supervisor.should_restart("b", 0, RuntimeError("x"))
        assert slept == pytest.approx([0.01, 0.02, 0.04])


@pytest.mark.parametrize("executor_cls", [LocalExecutor, ThreadedExecutor])
class TestSupervisedExecution:
    def test_crashing_workers_lose_no_tuples(self, executor_cls):
        sink, crashes = [], []
        builder = TopologyBuilder()
        builder.set_spout("src", lambda: RangeSpout(40))
        builder.set_bolt(
            "flaky", lambda: CrashOnceBolt(sink, crashes), parallelism=2
        ).shuffle_grouping("src")
        supervisor = Supervisor(RetryPolicy(max_restarts=100), sleep=_NO_SLEEP)
        metrics = executor_cls(
            builder.build(), fail_fast=True, supervisor=supervisor
        ).run()

        assert sorted(sink) == list(range(40))  # zero lost tuples
        assert crashes  # faults actually fired
        snap = metrics.snapshot()
        assert snap["flaky"]["restarts"] == len(crashes)
        assert snap["flaky"]["failed"] == len(crashes)
        assert snap["flaky"]["processed"] == 40
        assert supervisor.restarts("flaky") == len(crashes)

    def test_budget_exhaustion_fails_fast(self, executor_cls):
        builder = TopologyBuilder()
        builder.set_spout("src", lambda: RangeSpout(5))
        builder.set_bolt("bad", AlwaysFailBolt).shuffle_grouping("src")
        supervisor = Supervisor(RetryPolicy(max_restarts=2), sleep=_NO_SLEEP)
        executor = executor_cls(
            builder.build(), fail_fast=True, supervisor=supervisor
        )
        with pytest.raises(ComponentError):
            executor.run()
        # 1 initial attempt + 2 restarts, then gave up.
        assert supervisor.restarts("bad") == 2
        assert supervisor.gave_up("bad") >= 1

    def test_budget_exhaustion_drops_tuple_without_fail_fast(
        self, executor_cls
    ):
        sink = []

        class FailFirstTupleBolt(Bolt):
            def process(self, tup, collector):
                if tup["i"] == 0:
                    raise RuntimeError("tuple zero is cursed")
                sink.append(tup["i"])

        builder = TopologyBuilder()
        builder.set_spout("src", lambda: RangeSpout(5))
        builder.set_bolt("bad", FailFirstTupleBolt).shuffle_grouping("src")
        supervisor = Supervisor(RetryPolicy(max_restarts=2), sleep=_NO_SLEEP)
        metrics = executor_cls(
            builder.build(), fail_fast=False, supervisor=supervisor
        ).run()
        # The cursed tuple was retried then dropped; the rest flowed on.
        assert sorted(sink) == [1, 2, 3, 4]
        assert metrics.snapshot()["bad"]["restarts"] == 2

    def test_unsupervised_behaviour_unchanged(self, executor_cls):
        builder = TopologyBuilder()
        builder.set_spout("src", lambda: RangeSpout(3))
        builder.set_bolt("bad", AlwaysFailBolt).shuffle_grouping("src")
        with pytest.raises(ComponentError):
            executor_cls(builder.build(), fail_fast=True).run()
