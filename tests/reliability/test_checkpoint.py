"""Checkpoint tests: atomic snapshots round-trip exactly."""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.clock import VirtualClock
from repro.errors import CheckpointError
from repro.kvstore import InMemoryKVStore, Namespace, ShardedKVStore
from repro.reliability import CheckpointManager


def _manager(tmp_path, **kwargs):
    kwargs.setdefault("fsync", False)
    return CheckpointManager(tmp_path / "ckpt", **kwargs)


class TestRoundTrip:
    def test_values_versions_and_namespaces_survive(self, tmp_path):
        store = ShardedKVStore(n_shards=4)
        ns = Namespace(store, "mf:x")
        ns.put("u1", np.arange(4.0))
        ns.put("u1", np.arange(4.0) * 2)  # version 2
        store.put(("history", "u2"), [("v1", 1.0), ("v2", 2.0)])
        store.put("mu", (12.5, 7))

        manager = _manager(tmp_path)
        info = manager.create(store, wal_seq=41)
        assert info.n_entries == 3
        assert info.wal_seq == 41

        restored = ShardedKVStore(n_shards=4)
        assert manager.restore_latest(restored).checkpoint_id == 1
        np.testing.assert_array_equal(
            Namespace(restored, "mf:x").get("u1"), np.arange(4.0) * 2
        )
        assert Namespace(restored, "mf:x").version("u1") == 2
        assert restored.get(("history", "u2")) == [("v1", 1.0), ("v2", 2.0)]
        assert restored.get("mu") == (12.5, 7)
        assert len(restored) == 3

    def test_restore_across_different_shard_counts(self, tmp_path):
        store = ShardedKVStore(n_shards=2)
        for i in range(50):
            store.put(f"k{i}", i)
        manager = _manager(tmp_path)
        manager.create(store)

        restored = ShardedKVStore(n_shards=8)
        manager.restore_latest(restored)
        assert {restored.get(f"k{i}") for i in range(50)} == set(range(50))
        # Every entry landed on the shard that owns its key.
        for i in range(50):
            assert f"k{i}" in restored.shard_for(f"k{i}")

    def test_ttl_entries_keep_absolute_expiry(self, tmp_path):
        clock = VirtualClock()
        clock.set(100.0)
        store = InMemoryKVStore(clock=clock)
        store.put("ephemeral", "x", ttl=50.0)
        store.put("durable", "y")
        manager = _manager(tmp_path)
        manager.create(store)

        restored = InMemoryKVStore(clock=clock)
        manager.restore_latest(restored)
        assert restored.get("ephemeral") == "x"
        clock.set(200.0)  # past the 150.0 absolute expiry
        assert restored.get("ephemeral") is None
        assert restored.get("durable") == "y"

    def test_expired_entries_not_captured(self, tmp_path):
        clock = VirtualClock()
        clock.set(0.0)
        store = InMemoryKVStore(clock=clock)
        store.put("gone", 1, ttl=1.0)
        clock.set(10.0)
        manager = _manager(tmp_path)
        info = manager.create(store)
        assert info.n_entries == 0


class TestAtomicityAndRetention:
    def test_empty_root_restores_nothing(self, tmp_path):
        manager = _manager(tmp_path)
        assert manager.latest() is None
        assert manager.restore_latest(InMemoryKVStore()) is None

    def test_torn_staging_directory_is_ignored(self, tmp_path):
        manager = _manager(tmp_path)
        store = InMemoryKVStore()
        store.put("k", 1)
        manager.create(store)
        # Simulate a crash mid-write: staging dir with entries but no
        # manifest, never renamed.
        torn = manager.root / "tmp-00000099"
        torn.mkdir()
        (torn / "entries.pkl").write_bytes(b"garbage")
        assert [info.checkpoint_id for info in manager.list()] == [1]

    def test_checksum_mismatch_refuses_restore(self, tmp_path):
        manager = _manager(tmp_path)
        store = InMemoryKVStore()
        store.put("k", 1)
        info = manager.create(store)
        entries = Path(info.path) / "entries.pkl"
        entries.write_bytes(entries.read_bytes() + b"x")
        with pytest.raises(CheckpointError, match="checksum"):
            manager.restore(info, InMemoryKVStore())

    def test_manifest_records_payload_hash(self, tmp_path):
        manager = _manager(tmp_path)
        store = InMemoryKVStore()
        store.put("k", "v")
        info = manager.create(store, wal_seq=9)
        manifest = json.loads((Path(info.path) / "manifest.json").read_text())
        assert manifest["wal_seq"] == 9
        assert manifest["n_entries"] == 1
        assert len(manifest["sha256"]) == 64

    def test_retention_prunes_oldest(self, tmp_path):
        manager = _manager(tmp_path, retain=2)
        store = InMemoryKVStore()
        for i in range(4):
            store.put("k", i)
            manager.create(store)
        ids = [info.checkpoint_id for info in manager.list()]
        assert ids == [3, 4]
        # Latest still restores the newest value.
        restored = InMemoryKVStore()
        manager.restore_latest(restored)
        assert restored.get("k") == 3
