"""End-to-end reliability: kill-and-recover, chaos runs, degraded serving.

The acceptance bar for the subsystem:

* a recommender crashed mid-stream and recovered from checkpoint + WAL
  replay serves the *same top-N* as an uninterrupted run;
* a topology run under injected worker crashes and transient KV errors
  loses zero acked tuples;
* when the model store errors at serve time the router falls back to the
  hot-videos baseline, observably in its metrics.
"""

import pytest

from repro.baselines import HotRecommender
from repro.core.recommender import RealtimeRecommender
from repro.kvstore import InMemoryKVStore, ShardedKVStore
from repro.reliability import (
    ActionWAL,
    CheckpointManager,
    FaultPlan,
    FlakyKVStore,
    RecoveryManager,
    RetryPolicy,
    Supervisor,
    wrap_topology,
)
from repro.serving.router import RecRequest, RequestRouter, Scenario
from repro.storm import LocalExecutor
from repro.topology.pipeline import (
    COMPUTE_MF,
    GET_ITEM_PAIRS,
    ITEM_PAIR_SIM,
    MF_STORAGE,
    RESULT_STORAGE,
    SPOUT,
    USER_HISTORY,
    build_recommendation_topology,
)

N_TOTAL = 240  # actions in the run
N_CHECKPOINT = 150  # checkpoint taken after this many
N_CRASH = 220  # "power loss" after this many


def _recommender(world, store, wal=None):
    return RealtimeRecommender(
        world.videos,
        enable_demographic=False,  # demographic state is not KV-backed
        store=store,
        wal=wal,
    )


def _sample_users(actions, k=8):
    seen = []
    for action in actions:
        if action.user_id not in seen:
            seen.append(action.user_id)
        if len(seen) == k:
            break
    return seen


class TestKillAndRecover:
    @pytest.fixture()
    def stream(self, small_actions):
        return small_actions[:N_TOTAL]

    def test_recovered_model_matches_uninterrupted_run(
        self, small_world, stream, tmp_path
    ):
        # Reference: one uninterrupted pass over the whole stream.
        rec_a = _recommender(small_world, ShardedKVStore(n_shards=4))
        rec_a.observe_stream(stream)

        # Crashing run: WAL everything, checkpoint part-way, then "lose"
        # the process after N_CRASH actions (the store simply goes away).
        wal = ActionWAL(tmp_path / "wal", segment_max_records=64)
        recovery = RecoveryManager(
            CheckpointManager(tmp_path / "ckpt", fsync=False), wal
        )
        store_b = ShardedKVStore(n_shards=4)
        rec_b = _recommender(small_world, store_b, wal=wal)
        rec_b.observe_stream(stream[:N_CHECKPOINT])
        recovery.checkpoint(store_b)
        rec_b.observe_stream(stream[N_CHECKPOINT:N_CRASH])
        del rec_b  # crash: in-memory state is gone, disk survives

        # Recover into a brand-new store and recommender, replaying only
        # the WAL suffix past the checkpoint, then finish the stream.
        store_c = ShardedKVStore(n_shards=4)
        rec_c = _recommender(small_world, store_c, wal=wal)
        report = recovery.recover(store_c, rec_c.observe)
        assert not report.from_scratch
        assert report.checkpoint.wal_seq == N_CHECKPOINT
        assert report.replayed == N_CRASH - N_CHECKPOINT
        assert wal.last_seq == N_CRASH  # replay did not re-log
        rec_c.observe_stream(stream[N_CRASH:])
        assert wal.last_seq == N_TOTAL

        now = stream[-1].timestamp + 60.0
        for user in _sample_users(stream):
            assert rec_c.recommend_ids(user, n=10, now=now) == (
                rec_a.recommend_ids(user, n=10, now=now)
            ), f"recovered top-N diverged for {user}"

    def test_recovery_from_wal_alone(self, small_world, stream, tmp_path):
        """No checkpoint ever taken: the whole WAL replays from scratch."""
        wal = ActionWAL(tmp_path / "wal")
        recovery = RecoveryManager(
            CheckpointManager(tmp_path / "ckpt", fsync=False), wal
        )
        rec = _recommender(small_world, ShardedKVStore(n_shards=2), wal=wal)
        rec.observe_stream(stream[:100])
        del rec

        rec_a = _recommender(small_world, ShardedKVStore(n_shards=2))
        rec_a.observe_stream(stream[:100])

        store = ShardedKVStore(n_shards=2)
        rec_b = _recommender(small_world, store, wal=wal)
        report = recovery.recover(store, rec_b.observe)
        assert report.from_scratch
        assert report.replayed == 100

        now = stream[99].timestamp + 60.0
        for user in _sample_users(stream[:100], k=5):
            assert rec_b.recommend_ids(user, n=10, now=now) == (
                rec_a.recommend_ids(user, n=10, now=now)
            )

    def test_recovery_is_repeatable(self, small_world, stream, tmp_path):
        """Replay is deterministic: two recoveries agree with each other."""
        wal = ActionWAL(tmp_path / "wal")
        recovery = RecoveryManager(
            CheckpointManager(tmp_path / "ckpt", fsync=False), wal
        )
        store = ShardedKVStore(n_shards=2)
        rec = _recommender(small_world, store, wal=wal)
        rec.observe_stream(stream[:80])
        recovery.checkpoint(store)
        rec.observe_stream(stream[80:120])
        del rec

        recovered = []
        for _ in range(2):
            store = ShardedKVStore(n_shards=2)
            twin = _recommender(small_world, store, wal=wal)
            report = recovery.recover(store, twin.observe)
            assert report.replayed == 40
            recovered.append(twin)
        now = stream[119].timestamp + 60.0
        for user in _sample_users(stream[:120], k=5):
            assert recovered[0].recommend_ids(user, n=10, now=now) == (
                recovered[1].recommend_ids(user, n=10, now=now)
            )


class TestChaosTopology:
    def test_no_acked_tuples_lost_under_crashes_and_kv_errors(
        self, small_world, small_actions
    ):
        stream = small_actions[:200]
        flaky_store = FlakyKVStore(
            ShardedKVStore(n_shards=4), error_every=97
        )
        topology, system = build_recommendation_topology(
            list(stream), small_world.videos, store=flaky_store
        )
        chaotic = wrap_topology(
            topology,
            FaultPlan(
                seed=3, crash_every={USER_HISTORY: 31, ITEM_PAIR_SIM: 17}
            ),
        )
        supervisor = Supervisor(
            RetryPolicy(max_restarts=10_000, backoff_base=0.0),
            sleep=lambda s: None,
        )
        metrics = LocalExecutor(chaotic, supervisor=supervisor).run()
        snap = metrics.snapshot()

        # Every action the spout emitted was processed by each of the
        # three bolts fed straight from it — zero lost acked tuples.
        assert snap[SPOUT]["emitted"] == len(stream)
        for bolt in (USER_HISTORY, COMPUTE_MF, GET_ITEM_PAIRS):
            assert snap[bolt]["processed"] == len(stream), bolt
        # Downstream stages processed exactly what their upstream emitted.
        assert snap[MF_STORAGE]["processed"] == snap[COMPUTE_MF]["emitted"]
        assert snap[ITEM_PAIR_SIM]["processed"] == (
            snap[GET_ITEM_PAIRS]["emitted"]
        )
        assert snap[RESULT_STORAGE]["processed"] == (
            snap[ITEM_PAIR_SIM]["emitted"]
        )

        # The chaos actually happened.
        assert supervisor.restarts() > 0
        assert snap[USER_HISTORY]["restarts"] > 0
        assert snap[ITEM_PAIR_SIM]["restarts"] > 0
        assert flaky_store.errors_raised > 0
        # The learned state is intact enough to serve.
        flaky_store.error_every = 0
        serving = system.serving_recommender()
        user = stream[0].user_id
        assert serving.recommend_ids(
            user, n=5, now=stream[-1].timestamp + 60.0
        )


class TestDegradedServing:
    def test_router_falls_back_to_hot_videos_on_store_errors(
        self, small_world, small_actions
    ):
        stream = small_actions[:300]
        flaky = FlakyKVStore(InMemoryKVStore())
        primary = _recommender(small_world, flaky)
        hot = HotRecommender()
        for action in stream:
            primary.observe(action)
            hot.observe(action)
        router = RequestRouter(primary, fallback=hot)
        user = stream[0].user_id
        now = stream[-1].timestamp + 60.0

        # Healthy store: the primary serves.
        healthy = router.handle(RecRequest(user, n=5, timestamp=now))
        assert healthy.ok and not healthy.degraded

        # Model store starts erroring: requests degrade to HotVideos but
        # still succeed, and the fallback is visible in the metrics.
        flaky.fail_next(10_000)
        for _ in range(3):
            response = router.handle(RecRequest(user, n=5, timestamp=now))
            assert response.ok
            assert response.degraded
            assert response.video_ids  # the hot list is non-empty
        snap = router.snapshot()[Scenario.GUESS_YOU_LIKE.value]
        assert snap["requests"] == 4
        assert snap["fallbacks"] == 3
        assert snap["errors"] == 0
