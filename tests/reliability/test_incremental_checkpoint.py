"""Incremental (segment-referencing) checkpoints over the durable tier.

A ``kind="segments"`` checkpoint writes a manifest pointing at the durable
store's sealed segment files instead of re-pickling every entry — O(1) in
dataset size.  Restore rolls the store back to exactly that segment set;
when compaction has deleted a referenced segment the checkpoint is stale
and recovery must fall back to a full WAL replay.
"""

import json
from pathlib import Path

import pytest

from repro.core.recommender import RealtimeRecommender
from repro.errors import CheckpointError, StaleCheckpointError
from repro.kvstore import (
    DurableKVStore,
    InMemoryKVStore,
    ReadThroughCache,
)
from repro.reliability import (
    KIND_FULL,
    KIND_SEGMENTS,
    ActionWAL,
    CheckpointManager,
    RecoveryManager,
)


@pytest.fixture()
def durable(tmp_path):
    with DurableKVStore(
        tmp_path / "kv", fsync="never", segment_max_bytes=1024,
        auto_compact=False,
    ) as store:
        yield store


class TestCreateIncremental:
    def test_manifest_references_segments_only(self, tmp_path, durable):
        for i in range(40):
            durable.put(f"k{i}", "x" * 50)
        manager = CheckpointManager(tmp_path / "ckpt", fsync=False)
        info = manager.create_incremental(durable, wal_seq=40)

        assert info.kind == KIND_SEGMENTS
        assert info.incremental
        assert info.n_entries == 40
        # no entries.pkl — the checkpoint is a manifest, nothing else
        assert sorted(p.name for p in Path(info.path).iterdir()) == [
            "manifest.json"
        ]
        manifest = json.loads((Path(info.path) / "manifest.json").read_text())
        assert manifest["kind"] == KIND_SEGMENTS
        assert manifest["segments"]
        for segment in manifest["segments"]:
            seg_path = durable.root / segment["name"]
            assert seg_path.is_file()
            assert seg_path.stat().st_size == segment["bytes"]

    def test_cost_does_not_grow_with_dataset(self, tmp_path, durable):
        """The checkpoint directory stays manifest-sized however much data
        the store holds (the point of referencing segments)."""
        manager = CheckpointManager(tmp_path / "ckpt", retain=10, fsync=False)
        sizes = []
        for round_ in range(2):
            for i in range(200 * (round_ + 1)):
                durable.put(f"k{round_}-{i}", "x" * 100)
            info = manager.create_incremental(durable)
            sizes.append(
                sum(p.stat().st_size for p in Path(info.path).iterdir())
            )
        assert sizes[1] < sizes[0] * 3  # manifest growth only, not payload

    def test_requires_durable_backing(self, tmp_path):
        manager = CheckpointManager(tmp_path / "ckpt", fsync=False)
        with pytest.raises(CheckpointError):
            manager.create_incremental(InMemoryKVStore())

    def test_works_through_cache_tier(self, tmp_path, durable):
        tier = ReadThroughCache(durable, capacity=8)
        tier.put("k", "v")
        manager = CheckpointManager(tmp_path / "ckpt", fsync=False)
        info = manager.create_incremental(tier)
        assert info.incremental
        assert info.n_entries == 1

    def test_full_checkpoints_unchanged(self, tmp_path, durable):
        durable.put("k", "v")
        manager = CheckpointManager(tmp_path / "ckpt", fsync=False)
        info = manager.create(durable, wal_seq=1)
        assert info.kind == KIND_FULL
        assert not info.incremental
        fresh = InMemoryKVStore()
        assert manager.restore(info, fresh) == 1
        assert fresh.get("k") == "v"


class TestRestoreSegments:
    def test_restore_drops_post_checkpoint_writes(self, tmp_path, durable):
        for i in range(20):
            durable.put(f"k{i}", i)
        manager = CheckpointManager(tmp_path / "ckpt", fsync=False)
        info = manager.create_incremental(durable, wal_seq=20)

        durable.put("k0", "after-checkpoint")
        durable.put("new-key", 1)
        durable.delete("k5")

        tier = ReadThroughCache(durable, capacity=8)
        tier.get("k0")  # warm the cache with the post-checkpoint value
        assert manager.restore(info, tier) == 20
        assert tier.get("k0") == 0  # cache was dropped, disk rolled back
        assert tier.get("new-key") is None
        assert tier.get("k5") == 5

    def test_restore_after_reopen(self, tmp_path):
        """The checkpoint outlives the store object that produced it."""
        root = tmp_path / "kv"
        manager = CheckpointManager(tmp_path / "ckpt", fsync=False)
        with DurableKVStore(root, fsync="never") as store:
            store.put("a", 1)
            info = manager.create_incremental(store, wal_seq=1)
            store.put("b", 2)
        with DurableKVStore(root, fsync="never") as reopened:
            assert manager.restore(info, reopened) == 1
            assert reopened.get("a") == 1
            assert reopened.get("b") is None

    def test_compaction_makes_old_checkpoint_stale(self, tmp_path, durable):
        for i in range(30):
            durable.put(f"k{i}", "x" * 60)
        manager = CheckpointManager(tmp_path / "ckpt", fsync=False)
        info = manager.create_incremental(durable)
        durable.compact()
        with pytest.raises(StaleCheckpointError):
            manager.restore(info, durable)
        # data untouched by the failed restore
        assert durable.get("k0") == "x" * 60

    def test_tampered_manifest_rejected(self, tmp_path, durable):
        durable.put("k", "v")
        manager = CheckpointManager(tmp_path / "ckpt", fsync=False)
        info = manager.create_incremental(durable)
        manifest_path = Path(info.path) / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["segments"][0]["name"] = "seg-000000000042.log"
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(CheckpointError):
            manager.restore(info, durable)

    def test_restore_into_non_durable_store_rejected(self, tmp_path, durable):
        durable.put("k", "v")
        manager = CheckpointManager(tmp_path / "ckpt", fsync=False)
        info = manager.create_incremental(durable)
        with pytest.raises(CheckpointError):
            manager.restore(info, InMemoryKVStore())


class TestRecoveryIntegration:
    N_TOTAL = 200
    N_CHECKPOINT = 120
    N_CRASH = 180

    def _recommender(self, world, store, wal=None):
        return RealtimeRecommender(
            world.videos,
            enable_demographic=False,  # demographic state is not KV-backed
            store=store,
            wal=wal,
        )

    def _tier(self, tmp_path, name):
        durable = DurableKVStore(
            tmp_path / name, fsync="never", segment_max_bytes=64 * 1024
        )
        return ReadThroughCache(durable, capacity=512)

    def test_incremental_recovery_matches_uninterrupted_run(
        self, small_world, small_actions, tmp_path
    ):
        stream = small_actions[: self.N_TOTAL]

        rec_a = self._recommender(small_world, self._tier(tmp_path, "kv-a"))
        rec_a.observe_stream(stream)

        wal = ActionWAL(tmp_path / "wal", segment_max_records=64)
        recovery = RecoveryManager(
            CheckpointManager(tmp_path / "ckpt", fsync=False), wal
        )
        tier_b = self._tier(tmp_path, "kv-b")
        rec_b = self._recommender(small_world, tier_b, wal=wal)
        rec_b.observe_stream(stream[: self.N_CHECKPOINT])
        info = recovery.checkpoint(tier_b, incremental=True)
        assert info.incremental
        rec_b.observe_stream(stream[self.N_CHECKPOINT : self.N_CRASH])
        del rec_b  # crash — the durable files survive, memory does not

        # recover over the SAME durable root: restore_to_segments rolls the
        # log back to the checkpoint cut, then the WAL suffix replays
        tier_c = self._tier(tmp_path, "kv-b")
        rec_c = self._recommender(small_world, tier_c, wal=wal)
        report = recovery.recover(tier_c, rec_c.observe)
        assert not report.from_scratch
        assert not report.stale_checkpoint
        assert report.checkpoint.incremental
        assert report.replayed == self.N_CRASH - self.N_CHECKPOINT
        rec_c.observe_stream(stream[self.N_CRASH :])

        now = stream[-1].timestamp + 60.0
        users = {a.user_id for a in stream[:50]}
        for user in sorted(users)[:8]:
            assert rec_c.recommend_ids(user, n=10, now=now) == (
                rec_a.recommend_ids(user, n=10, now=now)
            ), f"recovered top-N diverged for {user}"

    def test_stale_checkpoint_falls_back_to_full_wal_replay(
        self, small_world, small_actions, tmp_path
    ):
        stream = small_actions[: self.N_TOTAL]

        rec_a = self._recommender(small_world, self._tier(tmp_path, "kv-a"))
        rec_a.observe_stream(stream)

        wal = ActionWAL(tmp_path / "wal")
        recovery = RecoveryManager(
            CheckpointManager(tmp_path / "ckpt", fsync=False), wal
        )
        tier_b = self._tier(tmp_path, "kv-b")
        rec_b = self._recommender(small_world, tier_b, wal=wal)
        rec_b.observe_stream(stream[: self.N_CHECKPOINT])
        recovery.checkpoint(tier_b, incremental=True)
        rec_b.observe_stream(stream[self.N_CHECKPOINT :])
        # compaction deletes the checkpointed segment files
        from repro.kvstore import unwrap_durable

        unwrap_durable(tier_b).compact()
        del rec_b

        tier_c = self._tier(tmp_path, "kv-b")
        rec_c = self._recommender(small_world, tier_c, wal=wal)
        report = recovery.recover(tier_c, rec_c.observe)
        assert report.stale_checkpoint
        assert report.from_scratch
        assert report.replayed == self.N_TOTAL  # the whole log, from seq 1

        now = stream[-1].timestamp + 60.0
        users = {a.user_id for a in stream[:50]}
        for user in sorted(users)[:8]:
            assert rec_c.recommend_ids(user, n=10, now=now) == (
                rec_a.recommend_ids(user, n=10, now=now)
            )
