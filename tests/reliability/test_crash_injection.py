"""Real SIGKILL crash injection against the durable tier.

A child process (``_crash_child.py``) writes under ``fsync`` guarantees
and acks each durable operation on stdout; the parent kills it with
``SIGKILL`` mid-write — no atexit, no flushing, no mercy — then recovers
from the surviving files and checks the acceptance bar from the issue:

* every acked write is present after reopen;
* a torn tail is truncated with a metric increment, never a crash and
  never a silently wrong read;
* a recovered ``RealtimeRecommender`` serves the same top-N as a clean
  process that saw the same acked prefix.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.recommender import RealtimeRecommender
from repro.data import SyntheticWorld
from repro.data.synthetic import WorldConfig
from repro.kvstore import DurableKVStore, ReadThroughCache, ShardedKVStore
from repro.obs import MetricsRegistry
from repro.reliability import ActionWAL, CheckpointManager, RecoveryManager

from ._crash_child import SEGMENT_MAX_BYTES, WORLD

CHILD = Path(__file__).with_name("_crash_child.py")


def _metric(registry, name):
    doc = registry.snapshot()[name]
    return doc["series"][0]["value"] if doc["series"] else 0.0


def _spawn(mode, root, *extra):
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, str(CHILD), mode, str(root), *extra],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )


def _read_acks_then_kill(proc, min_acks, timeout_s=60.0):
    """Wait for ``min_acks`` acked ops, then SIGKILL mid-write."""
    acked = []
    deadline = time.monotonic() + timeout_s
    for line in proc.stdout:
        if line.startswith("ACK "):
            acked.append(int(line.split()[1]))
            if len(acked) >= min_acks:
                break
        elif line.startswith("DONE"):
            raise AssertionError(
                "child finished before the kill — raise its --limit"
            )
        if time.monotonic() > deadline:
            raise AssertionError(f"child too slow: {len(acked)} acks")
    os.kill(proc.pid, signal.SIGKILL)
    proc.wait(timeout=10)
    proc.stdout.close()
    proc.stderr.close()
    assert proc.returncode == -signal.SIGKILL
    return acked


@pytest.mark.slow
class TestKVCrash:
    def test_no_acked_write_lost_to_sigkill(self, tmp_path):
        proc = _spawn("kv", tmp_path)
        acked = _read_acks_then_kill(proc, min_acks=200)

        registry = MetricsRegistry()
        with DurableKVStore(
            tmp_path / "kv",
            fsync="never",
            segment_max_bytes=SEGMENT_MAX_BYTES,
            registry=registry,
        ) as store:
            for i in acked:
                assert store.get(f"k{i}") == (f"k{i}", i), (
                    f"acked write k{i} lost or wrong after SIGKILL"
                )
            # unacked tail may or may not have landed; whatever survived
            # must still be well-formed
            for key in store.keys():
                i = int(key[1:])
                assert store.get(key) == (key, i)
        # reopen neither crashed nor invented data; if the kill tore a
        # record, the anomaly was counted, not hidden
        assert _metric(registry, "durable_kv_torn_tail_truncations_total") in (
            0.0,
            1.0,
        )

    def test_repeated_kill_reopen_cycles(self, tmp_path):
        """Three kill/reopen rounds against the same root: damage never
        accumulates and earlier rounds' acked writes stay readable."""
        all_acked = []
        for round_ in range(3):
            proc = _spawn("kv", tmp_path)
            # the child redoes low keys each round; that's fine — versions
            # just climb. Kill at a different depth each round.
            acked = _read_acks_then_kill(proc, min_acks=80 + 40 * round_)
            all_acked.extend(acked)
            with DurableKVStore(
                tmp_path / "kv",
                fsync="never",
                segment_max_bytes=SEGMENT_MAX_BYTES,
            ) as store:
                for i in set(all_acked):
                    assert store.get(f"k{i}") == (f"k{i}", i)


@pytest.mark.slow
class TestRecommenderCrash:
    def test_recovered_recommender_serves_identical_top_n(self, tmp_path):
        proc = _spawn("rec", tmp_path, "--checkpoint-every", "60")
        acked = _read_acks_then_kill(proc, min_acks=150, timeout_s=120.0)
        max_acked = max(acked)

        # Recover from the surviving files exactly as a restarted service
        # would: roll the durable tier back to the last checkpoint's
        # segment set, replay the WAL suffix through a fresh recommender.
        durable = DurableKVStore(
            tmp_path / "kv",
            fsync="never",
            segment_max_bytes=SEGMENT_MAX_BYTES,
        )
        tier = ReadThroughCache(durable, capacity=512)
        wal = ActionWAL(tmp_path / "wal", segment_max_records=64)
        recovery = RecoveryManager(
            CheckpointManager(tmp_path / "ckpt"), wal
        )
        world = SyntheticWorld(WorldConfig(**WORLD))
        recovered = RealtimeRecommender(
            world.videos, enable_demographic=False, store=tier, wal=wal
        )
        report = recovery.recover(tier, recovered.observe)

        # Every acked action was WAL-durable before it was acked.
        assert report.last_seq >= max_acked
        assert not report.from_scratch  # the seq-0 baseline always exists

        # A clean process that saw the same prefix must agree on top-N.
        actions = world.generate_actions()[: report.last_seq]
        clean = RealtimeRecommender(
            world.videos,
            enable_demographic=False,
            store=ShardedKVStore(n_shards=4),
        )
        clean.observe_stream(actions)

        now = actions[-1].timestamp + 60.0
        users = sorted({a.user_id for a in actions[:80]})[:10]
        assert users
        for user in users:
            assert recovered.recommend_ids(user, n=10, now=now) == (
                clean.recommend_ids(user, n=10, now=now)
            ), f"post-crash top-N diverged for {user}"
        durable.close()
