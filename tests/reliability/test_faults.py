"""Fault-injection harness tests: chaos must be deterministic."""

import pytest

from repro.errors import InjectedFault, TransientKVError
from repro.kvstore import InMemoryKVStore
from repro.reliability import (
    ChaosBolt,
    FaultPlan,
    FlakyKVStore,
    RetryPolicy,
    Supervisor,
    wrap_topology,
)
from repro.storm import (
    Bolt,
    Collector,
    ComponentContext,
    LocalExecutor,
    Spout,
    StreamTuple,
    TopologyBuilder,
)


class RangeSpout(Spout):
    def __init__(self, n):
        self.n = n
        self.pos = 0

    def next_tuple(self):
        if self.pos >= self.n:
            return None
        tup = StreamTuple({"i": self.pos})
        self.pos += 1
        return tup


class ForwardBolt(Bolt):
    def process(self, tup, collector):
        collector.emit({"i": tup["i"]})


class SinkBolt(Bolt):
    def __init__(self, sink):
        self.sink = sink

    def process(self, tup, collector):
        self.sink.append(tup["i"])


class TestFaultPlan:
    def test_validates_rates_and_periods(self):
        with pytest.raises(ValueError):
            FaultPlan(crash_every={"b": 0})
        with pytest.raises(ValueError):
            FaultPlan(drop_rate=1.0)
        with pytest.raises(ValueError):
            FaultPlan(duplicate_rate=-0.1)


class TestChaosBolt:
    def _run(self, bolt, n):
        bolt.prepare(ComponentContext("b", 0, 1))
        out = []
        for i in range(n):
            collector = Collector()
            try:
                bolt.process(StreamTuple({"i": i}), collector)
            except InjectedFault:
                out.append("crash")
                continue
            out.extend(tup["i"] for tup in collector.drain())
        return out

    def test_crash_schedule_is_periodic(self):
        plan = FaultPlan(crash_every={"b": 3})
        out = self._run(ChaosBolt(ForwardBolt(), "b", plan), 9)
        assert out == [0, 1, "crash", 3, 4, "crash", 6, 7, "crash"]

    def test_drop_and_duplicate_are_seed_deterministic(self):
        plan = FaultPlan(seed=7, drop_rate=0.2, duplicate_rate=0.2)
        first = self._run(ChaosBolt(ForwardBolt(), "b", plan), 50)
        second = self._run(ChaosBolt(ForwardBolt(), "b", plan), 50)
        assert first == second
        assert len(first) != 50  # some tuples dropped or doubled
        other_seed = self._run(
            ChaosBolt(ForwardBolt(), "b", FaultPlan(seed=8, drop_rate=0.2,
                                                    duplicate_rate=0.2)), 50
        )
        assert first != other_seed

    def test_duplicates_preserve_stream(self):
        plan = FaultPlan(seed=1, duplicate_rate=0.99)
        bolt = ChaosBolt(ForwardBolt(), "b", plan)
        bolt.prepare(ComponentContext("b", 0, 1))
        collector = Collector()
        bolt.process(StreamTuple({"i": 1}), collector)
        emitted = collector.drain()
        assert len(emitted) == 2
        assert emitted[0] == emitted[1]


class TestWrapTopology:
    def test_wrapped_topology_runs_under_supervision(self):
        sink = []
        builder = TopologyBuilder()
        builder.set_spout("src", lambda: RangeSpout(30))
        builder.set_bolt("mid", ForwardBolt).shuffle_grouping("src")
        builder.set_bolt("sink", lambda: SinkBolt(sink)).shuffle_grouping("mid")
        chaotic = wrap_topology(
            builder.build(), FaultPlan(crash_every={"mid": 5})
        )
        supervisor = Supervisor(
            RetryPolicy(max_restarts=100, backoff_base=0.0),
            sleep=lambda s: None,
        )
        metrics = LocalExecutor(chaotic, supervisor=supervisor).run()
        assert sorted(sink) == list(range(30))
        assert metrics.snapshot()["mid"]["restarts"] > 0
        # The untouched original still runs clean.
        sink.clear()
        LocalExecutor(builder.build()).run()
        assert sorted(sink) == list(range(30))

    def test_spouts_are_not_wrapped(self):
        builder = TopologyBuilder()
        builder.set_spout("src", lambda: RangeSpout(1))
        builder.set_bolt("sink", lambda: SinkBolt([])).shuffle_grouping("src")
        chaotic = wrap_topology(builder.build(), FaultPlan())
        assert chaotic.components["src"].factory().__class__ is RangeSpout
        assert isinstance(chaotic.components["sink"].factory(), ChaosBolt)


class TestFlakyKVStore:
    def test_error_schedule_is_periodic(self):
        store = FlakyKVStore(InMemoryKVStore(), error_every=3)
        outcomes = []
        for i in range(9):
            try:
                store.put(f"k{i}", i)
                outcomes.append("ok")
            except TransientKVError:
                outcomes.append("err")
        assert outcomes == ["ok", "ok", "err"] * 3
        assert store.errors_raised == 3

    def test_failed_operation_leaves_state_untouched(self):
        store = FlakyKVStore(InMemoryKVStore())
        store.put("k", 1)
        store.fail_next()
        with pytest.raises(TransientKVError):
            store.put("k", 2)
        assert store.get("k") == 1
        assert store.version("k") == 1

    def test_fail_next_forces_errors(self):
        store = FlakyKVStore(InMemoryKVStore())
        store.fail_next(2)
        with pytest.raises(TransientKVError):
            store.get("a")
        with pytest.raises(TransientKVError):
            store.update("a", lambda x: x, default=0)
        assert store.get("a", "d") == "d"  # schedule exhausted
