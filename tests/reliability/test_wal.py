"""Write-ahead-log tests: rotation, replay positioning, torn tails."""

import os

import pytest

from repro.data.schema import ActionType, UserAction
from repro.errors import WALError
from repro.reliability import ActionWAL


def _action(i: int) -> UserAction:
    return UserAction(
        timestamp=float(i),
        user_id=f"u{i % 7}",
        video_id=f"v{i % 13}",
        action=ActionType.CLICK,
    )


class TestAppendReplay:
    def test_sequences_are_contiguous_from_one(self, tmp_path):
        wal = ActionWAL(tmp_path)
        seqs = [wal.append(_action(i)) for i in range(5)]
        assert seqs == [1, 2, 3, 4, 5]
        assert wal.last_seq == 5

    def test_replay_returns_actions_in_order(self, tmp_path):
        wal = ActionWAL(tmp_path)
        originals = [_action(i) for i in range(20)]
        for action in originals:
            wal.append(action)
        replayed = list(wal.replay())
        assert [seq for seq, _ in replayed] == list(range(1, 21))
        assert [a for _, a in replayed] == originals

    def test_replay_after_seq_skips_prefix(self, tmp_path):
        wal = ActionWAL(tmp_path)
        for i in range(10):
            wal.append(_action(i))
        assert [seq for seq, _ in wal.replay(after_seq=7)] == [8, 9, 10]

    def test_suspend_makes_append_a_noop(self, tmp_path):
        wal = ActionWAL(tmp_path)
        wal.append(_action(0))
        with wal.suspend():
            assert wal.append(_action(1)) == 1
        assert wal.last_seq == 1
        assert len(list(wal.replay())) == 1


class TestSegmentRotation:
    def test_rotates_at_max_records(self, tmp_path):
        wal = ActionWAL(tmp_path, segment_max_records=4)
        for i in range(10):
            wal.append(_action(i))
        names = [path.name for path in wal.segments()]
        assert names == [
            "wal-000000000001.log",
            "wal-000000000005.log",
            "wal-000000000009.log",
        ]
        # Rotation must not lose or reorder records.
        assert [seq for seq, _ in wal.replay()] == list(range(1, 11))

    def test_replay_skips_whole_old_segments(self, tmp_path):
        wal = ActionWAL(tmp_path, segment_max_records=3)
        for i in range(9):
            wal.append(_action(i))
        assert [seq for seq, _ in wal.replay(after_seq=6)] == [7, 8, 9]

    def test_reopen_resumes_sequence_numbers(self, tmp_path):
        with ActionWAL(tmp_path, segment_max_records=3) as wal:
            for i in range(7):
                wal.append(_action(i))
        reopened = ActionWAL(tmp_path, segment_max_records=3)
        assert reopened.last_seq == 7
        assert reopened.append(_action(7)) == 8
        assert [seq for seq, _ in reopened.replay()] == list(range(1, 9))

    def test_rotation_fsync_sequence(self, tmp_path, monkeypatch):
        """With ``fsync=True`` a rotation must (a) fsync the outgoing
        segment file before closing it and (b) fsync the WAL *directory*
        after creating the new file — otherwise power loss can forget
        either the sealed records or the new segment's existence."""
        fsyncs = []
        real_fsync = os.fsync

        def spy_fsync(fd):
            fsyncs.append("dir" if os.fstat(fd).st_mode & 0o040000 else "file")
            return real_fsync(fd)

        monkeypatch.setattr(os, "fsync", spy_fsync)
        wal = ActionWAL(tmp_path, segment_max_records=2, fsync=True)
        wal.append(_action(0))  # opens segment 1: dir fsync
        wal.append(_action(1))
        fsyncs.clear()
        wal.append(_action(2))  # rotation: seal old file, then dir fsync
        # per-append file fsyncs follow the rotation pair
        assert fsyncs[:3] == ["file", "dir", "file"]
        wal.close()

    def test_no_fsync_calls_when_disabled(self, tmp_path, monkeypatch):
        calls = []
        monkeypatch.setattr(os, "fsync", lambda fd: calls.append(fd))
        wal = ActionWAL(tmp_path, segment_max_records=2, fsync=False)
        for i in range(5):
            wal.append(_action(i))
        wal.close()
        assert calls == []


class TestCorruption:
    def test_torn_tail_is_dropped(self, tmp_path):
        wal = ActionWAL(tmp_path)
        for i in range(3):
            wal.append(_action(i))
        wal.close()
        segment = wal.segments()[-1]
        with open(segment, "a", encoding="utf-8") as handle:
            handle.write("4\t99.0\tu1\tv1\tcli")  # crash mid-append
        assert [seq for seq, _ in ActionWAL(tmp_path).replay()] == [1, 2, 3]

    def test_reopen_after_torn_tail_continues_cleanly(self, tmp_path):
        wal = ActionWAL(tmp_path)
        wal.append(_action(0))
        wal.close()
        segment = wal.segments()[-1]
        with open(segment, "a", encoding="utf-8") as handle:
            handle.write("2\tgarb")
        reopened = ActionWAL(tmp_path)
        assert reopened.last_seq == 1

    def test_interior_corruption_raises(self, tmp_path):
        wal = ActionWAL(tmp_path)
        for i in range(3):
            wal.append(_action(i))
        wal.close()
        segment = wal.segments()[-1]
        lines = segment.read_text(encoding="utf-8").splitlines()
        lines[1] = "not a record"
        segment.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(WALError, match="corrupt"):
            list(ActionWAL(tmp_path).replay())

    def test_sequence_gap_raises(self, tmp_path):
        wal = ActionWAL(tmp_path)
        for i in range(3):
            wal.append(_action(i))
        wal.close()
        segment = wal.segments()[-1]
        lines = segment.read_text(encoding="utf-8").splitlines()
        del lines[1]
        segment.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(WALError, match="gap"):
            list(ActionWAL(tmp_path).replay())
