"""Recovery semantics specific to the arena parameter layout.

The arena lives as two entries inside the model's meta namespace, so the
ordinary checkpoint/restore machinery must capture it wholesale — and,
critically, a model constructed *before* the restore (the recovery
manager's order: build the recommender, then load state into its store)
must see the restored arenas, because the model reads them from the
store per access instead of caching them.
"""

import numpy as np

from repro.clock import VirtualClock
from repro.config import MFConfig, ReproConfig
from repro.core import MFModel, RealtimeRecommender
from repro.core.arena import FactorArena
from repro.kvstore import InMemoryKVStore
from repro.reliability import ActionWAL, CheckpointManager, RecoveryManager


def test_checkpoint_snapshots_arena_as_single_entries(
    small_world, small_split, tmp_path
):
    store = InMemoryKVStore()
    model = MFModel(MFConfig(backend="arena"), store=store)
    rec = RealtimeRecommender(
        small_world.videos,
        store=store,
        clock=VirtualClock(0.0),
        enable_demographic=False,
    )
    rec.observe_stream(small_split.train[:200])
    arena_keys = [
        key for key in store.keys() if "arena:" in str(key)
    ]
    assert len(arena_keys) == 2  # one per entity kind, not one per entity
    manager = CheckpointManager(tmp_path / "ckpts", fsync=False)
    info = manager.create(store, metadata={"mf_backend": model.backend})
    assert info.metadata == {"mf_backend": "arena"}

    restored = InMemoryKVStore()
    manager.restore(info, restored)
    clone = MFModel(MFConfig(backend="arena"), store=restored)
    assert clone.n_users == rec.model.n_users
    videos = sorted(rec.model.known_videos())
    for user_id in sorted(small_world.users)[:5]:
        np.testing.assert_array_equal(
            clone.predict_many(user_id, videos),
            rec.model.predict_many(user_id, videos),
        )


def test_model_constructed_before_restore_sees_restored_arena(
    small_world, small_split, tmp_path
):
    # Train, checkpoint, "crash".
    store_a = InMemoryKVStore()
    rec_a = RealtimeRecommender(
        small_world.videos,
        store=store_a,
        clock=VirtualClock(0.0),
        enable_demographic=False,
    )
    rec_a.observe_stream(small_split.train[:150])
    manager = CheckpointManager(tmp_path / "ckpts", fsync=False)
    info = manager.create(store_a)

    # Recovery order: the recommender (and its MFModel) exists BEFORE the
    # checkpoint lands in its store.
    store_b = InMemoryKVStore()
    rec_b = RealtimeRecommender(
        small_world.videos,
        store=store_b,
        clock=VirtualClock(0.0),
        enable_demographic=False,
    )
    assert rec_b.model.n_users == 0
    manager.restore(info, store_b)
    assert rec_b.model.n_users == rec_a.model.n_users
    videos = sorted(rec_a.model.known_videos())
    for user_id in sorted(small_world.users)[:5]:
        np.testing.assert_array_equal(
            rec_b.model.predict_many(user_id, videos),
            rec_a.model.predict_many(user_id, videos),
        )


def test_full_recovery_with_wal_replay_on_arena(
    small_world, small_split, tmp_path
):
    actions = small_split.train[:240]
    wal_a = ActionWAL(tmp_path / "wal-a", fsync=False)
    store_a = InMemoryKVStore()
    rec_a = RealtimeRecommender(
        small_world.videos,
        config=ReproConfig(),
        store=store_a,
        clock=VirtualClock(0.0),
        enable_demographic=False,
        wal=wal_a,
    )
    manager = CheckpointManager(tmp_path / "ckpts", fsync=False)
    rec_a.observe_stream(actions[:150])
    manager.create(store_a, wal_seq=150)
    rec_a.observe_stream(actions[150:])  # these survive only in the WAL

    # Uninterrupted reference run.
    ref = RealtimeRecommender(
        small_world.videos,
        store=InMemoryKVStore(),
        clock=VirtualClock(0.0),
        enable_demographic=False,
    )
    ref.observe_stream(actions)

    # Recover: fresh store, recommender constructed first, checkpoint
    # restored underneath it, WAL tail replayed through observe().
    store_c = InMemoryKVStore()
    rec_c = RealtimeRecommender(
        small_world.videos,
        store=store_c,
        clock=VirtualClock(0.0),
        enable_demographic=False,
    )
    recovery = RecoveryManager(manager, ActionWAL(tmp_path / "wal-a", fsync=False))
    report = recovery.recover(store_c, rec_c.observe)
    assert report.replayed == 90
    now = max(a.timestamp for a in actions) + 1.0
    for user_id in sorted(small_world.users)[:8]:
        assert rec_c.recommend_ids(user_id, n=10, now=now) == ref.recommend_ids(
            user_id, n=10, now=now
        )


def test_arena_value_roundtrips_through_snapshot_entries():
    store = InMemoryKVStore()
    arena = FactorArena(4)
    arena.put("e", np.arange(4.0), 0.5)
    store.put(("ns", "arena"), arena)
    restored = InMemoryKVStore()
    restored.restore_entries(store.snapshot_entries())
    clone = restored.get(("ns", "arena"))
    np.testing.assert_array_equal(clone.vector("e"), np.arange(4.0))
    assert clone.bias("e") == 0.5
