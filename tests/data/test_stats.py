"""Tests for dataset statistics (Tables 3 and 4 machinery)."""

import pytest

from repro.data import (
    ActionType,
    DatasetStats,
    User,
    UserAction,
    dataset_stats,
    group_stats,
)


def _action(user, video, ts=0.0):
    return UserAction(ts, user, video, ActionType.CLICK)


class TestDatasetStats:
    def test_counts(self):
        train = [_action("u1", "v1"), _action("u1", "v2"), _action("u2", "v1")]
        test = [_action("u1", "v1", ts=10.0)]
        stats = dataset_stats(train, test)
        assert stats.n_users == 2
        assert stats.n_videos == 2
        assert stats.n_actions == 3
        assert stats.n_test_actions == 1

    def test_sparsity_definition(self):
        """Paper: sparsity = #actions / (#users * #videos)."""
        stats = DatasetStats(n_users=10, n_videos=20, n_actions=50)
        assert stats.sparsity == pytest.approx(50 / 200)
        assert stats.sparsity_percent == pytest.approx(25.0)

    def test_sparsity_empty(self):
        assert DatasetStats(0, 0, 0).sparsity == 0.0

    def test_as_row(self):
        row = DatasetStats(2, 4, 8, 1).as_row()
        assert row["users"] == 2
        assert row["sparsity_percent"] == pytest.approx(100.0)


class TestGroupStats:
    @pytest.fixture
    def users(self):
        return {
            "u1": User("u1", gender="m", age_band="young"),
            "u2": User("u2", gender="m", age_band="young"),
            "u3": User("u3", gender="f", age_band="adult"),
            "u4": User("u4", registered=False),
        }

    def test_actions_partitioned_by_group(self, users):
        actions = [
            _action("u1", "v1"),
            _action("u2", "v1"),
            _action("u3", "v2"),
            _action("u4", "v3"),
        ]
        stats = group_stats(actions, users, include_global=True)
        assert stats["m|young"].n_users == 2
        assert stats["f|adult"].n_actions == 1
        assert stats["global"].n_users == 1  # the unregistered user

    def test_unknown_user_goes_global(self, users):
        stats = group_stats(
            [_action("stranger", "v")], users, include_global=True
        )
        assert stats["global"].n_actions == 1

    def test_global_bucket_excluded_by_default(self, users):
        """The fallback bucket is not a demographic group (Table 4 picks
        'the three largest demographic groups')."""
        actions = [_action("u4", "v1"), _action("u1", "v1")]
        stats = group_stats(actions, users)
        assert "global" not in stats
        assert "m|young" in stats

    def test_top_k_selects_largest_groups(self, users):
        actions = (
            [_action("u1", f"v{i}") for i in range(5)]
            + [_action("u3", "v9")]
            + [_action("u4", "v8")]
        )
        stats = group_stats(actions, users, top_k=1)
        assert list(stats) == ["m|young"]

    def test_group_stats_partition_consistency(self, medium_world, medium_actions):
        """Group stats are consistent slices of the global dataset.  (The
        Table 4 density claim needs a type-concentrated world and lives in
        benchmarks/test_table4_group_stats.py.)"""
        global_stats = dataset_stats(medium_actions)
        groups = group_stats(
            medium_actions, medium_world.users, include_global=True
        )
        assert sum(s.n_actions for s in groups.values()) == global_stats.n_actions
        assert sum(s.n_users for s in groups.values()) == global_stats.n_users
        for stats in groups.values():
            assert stats.n_videos <= global_stats.n_videos
            assert stats.n_pairs <= stats.n_actions
