"""Tests for stream cleaning, splitting and replay."""

import pytest

from repro.clock import SECONDS_PER_DAY
from repro.data import (
    ActionType,
    UserAction,
    day_of,
    engaged_videos_by_user,
    filter_active,
    replay,
    sort_stream,
    split_by_day,
)
from repro.errors import DataError


def _action(ts, user="u", video="v", action=ActionType.CLICK):
    return UserAction(ts, user, video, action)


class TestSortAndReplay:
    def test_sort_stream(self):
        actions = [_action(3.0), _action(1.0), _action(2.0)]
        assert [a.timestamp for a in sort_stream(actions)] == [1.0, 2.0, 3.0]

    def test_replay_yields_in_order(self):
        actions = [_action(3.0), _action(1.0)]
        assert [a.timestamp for a in replay(actions)] == [1.0, 3.0]


class TestDayOf:
    def test_day_boundaries(self):
        assert day_of(_action(0.0)) == 0
        assert day_of(_action(SECONDS_PER_DAY - 0.001)) == 0
        assert day_of(_action(SECONDS_PER_DAY)) == 1
        assert day_of(_action(6.5 * SECONDS_PER_DAY)) == 6


class TestSplitByDay:
    def test_chronological_partition(self):
        actions = [
            _action(0.5 * SECONDS_PER_DAY),
            _action(5.5 * SECONDS_PER_DAY),
            _action(6.5 * SECONDS_PER_DAY),
        ]
        split = split_by_day(actions, train_days=6)
        assert len(split.train) == 2
        assert len(split.test) == 1
        assert all(day_of(a) < 6 for a in split.train)
        assert all(day_of(a) >= 6 for a in split.test)

    def test_output_sorted_even_if_input_is_not(self):
        actions = [_action(2.0), _action(1.0), _action(0.5)]
        split = split_by_day(actions, train_days=1)
        assert [a.timestamp for a in split.train] == [0.5, 1.0, 2.0]

    def test_invalid_train_days(self):
        with pytest.raises(DataError):
            split_by_day([], train_days=0)

    def test_test_engagements_exclude_impressions(self):
        actions = [
            UserAction(7 * SECONDS_PER_DAY, "u", "v1", ActionType.IMPRESS),
            UserAction(7 * SECONDS_PER_DAY, "u", "v2", ActionType.CLICK),
        ]
        split = split_by_day(actions, train_days=6)
        assert [a.video_id for a in split.test_engagements] == ["v2"]


class TestFilterActive:
    def test_keeps_active_users_and_videos(self):
        actions = []
        # u-active interacts 5 times with v-active
        for i in range(5):
            actions.append(_action(float(i), "u-active", "v-active"))
        # u-rare interacts once
        actions.append(_action(10.0, "u-rare", "v-active"))
        kept = filter_active(actions, min_user_actions=5, min_video_actions=5)
        users = {a.user_id for a in kept}
        assert users == {"u-active"}

    def test_cascading_removal_reaches_fixed_point(self):
        """Removing a user can push a video below threshold, and so on."""
        actions = []
        # v1 has 3 actions: 2 from u1, 1 from u2.
        actions += [_action(1.0, "u1", "v1"), _action(2.0, "u1", "v1")]
        actions += [_action(3.0, "u2", "v1")]
        # u2 has only this 1 action -> removed -> v1 drops to 2 -> removed
        kept = filter_active(actions, min_user_actions=2, min_video_actions=3)
        assert kept == []

    def test_no_filtering_with_threshold_one(self):
        actions = [_action(1.0, "a", "x"), _action(2.0, "b", "y")]
        assert len(filter_active(actions, 1, 1)) == 2

    def test_empty_input(self):
        assert filter_active([], 50, 50) == []


class TestEngagedVideos:
    def test_collects_engagements_only(self):
        actions = [
            UserAction(1.0, "u", "v1", ActionType.IMPRESS),
            UserAction(2.0, "u", "v2", ActionType.CLICK),
            UserAction(3.0, "u", "v3", ActionType.PLAYTIME, view_time=10.0),
            UserAction(4.0, "u2", "v1", ActionType.LIKE),
        ]
        engaged = engaged_videos_by_user(actions)
        assert engaged == {"u": {"v2", "v3"}, "u2": {"v1"}}


class TestGroupByDay:
    def test_buckets_by_day_preserving_order(self):
        from repro.data.stream import group_by_day

        actions = [
            _action(10.0, video="a"),
            _action(SECONDS_PER_DAY + 1.0, video="b"),
            _action(20.0, video="c"),
            _action(2.5 * SECONDS_PER_DAY, video="d"),
        ]
        by_day = group_by_day(actions)
        assert sorted(by_day) == [0, 1, 2]
        assert [a.video_id for a in by_day[0]] == ["a", "c"]
        assert [a.video_id for a in by_day[1]] == ["b"]
        assert [a.video_id for a in by_day[2]] == ["d"]

    def test_empty_stream(self):
        from repro.data.stream import group_by_day

        assert group_by_day([]) == {}
