"""Tests for the synthetic world generator: determinism, funnel structure,
ground-truth coherence, and the statistical regimes the experiments need."""

import numpy as np
import pytest

from repro.clock import SECONDS_PER_DAY
from repro.data import ActionType, SyntheticWorld, WorldConfig
from repro.data.synthetic import paper_world_config
from repro.errors import ConfigError


@pytest.fixture(scope="module")
def world():
    return SyntheticWorld(
        WorldConfig(n_users=50, n_videos=60, n_types=4, days=3, seed=5)
    )


@pytest.fixture(scope="module")
def actions(world):
    return world.generate_actions()


class TestWorldConstruction:
    def test_catalogue_sizes(self, world):
        assert len(world.users) == 50
        assert len(world.videos) == 60

    def test_video_types_within_catalogue(self, world):
        kinds = {v.kind for v in world.videos.values()}
        assert kinds <= set(world.type_labels)

    def test_durations_positive(self, world):
        assert all(v.duration >= 60.0 for v in world.videos.values())

    def test_unregistered_users_have_no_attributes(self, world):
        for user in world.users.values():
            if not user.registered:
                assert user.gender is None
                assert user.demographic_group == "global"

    def test_registered_users_have_groups(self, world):
        groups = {
            u.demographic_group
            for u in world.users.values()
            if u.registered
        }
        assert groups <= set(world.group_labels)

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            WorldConfig(n_users=0)
        with pytest.raises(ConfigError):
            WorldConfig(n_types=50, n_videos=10)
        with pytest.raises(ConfigError):
            WorldConfig(popularity_mix=1.5)
        with pytest.raises(ConfigError):
            WorldConfig(days=0)


class TestDeterminism:
    def test_same_seed_same_world(self):
        cfg = WorldConfig(n_users=20, n_videos=30, days=2, seed=9)
        w1, w2 = SyntheticWorld(cfg), SyntheticWorld(cfg)
        assert np.allclose(w1.user_factors, w2.user_factors)
        assert np.allclose(w1.video_factors, w2.video_factors)
        assert w1.generate_actions() == w2.generate_actions()

    def test_different_seed_different_actions(self):
        a1 = SyntheticWorld(WorldConfig(n_users=20, n_videos=30, days=2, seed=1)).generate_actions()
        a2 = SyntheticWorld(WorldConfig(n_users=20, n_videos=30, days=2, seed=2)).generate_actions()
        assert a1 != a2


class TestActionStream:
    def test_sorted_by_time(self, actions):
        times = [a.timestamp for a in actions]
        assert times == sorted(times)

    def test_spans_configured_days(self, actions):
        assert max(a.timestamp for a in actions) < 3 * SECONDS_PER_DAY
        assert min(a.timestamp for a in actions) >= 0

    def test_known_entities_only(self, world, actions):
        assert {a.user_id for a in actions} <= set(world.users)
        assert {a.video_id for a in actions} <= set(world.videos)

    def test_funnel_order_impress_before_click(self, actions):
        """Within a (user, video) chain, CLICK never precedes IMPRESS."""
        last_impress: dict[tuple[str, str], float] = {}
        for a in actions:
            key = (a.user_id, a.video_id)
            if a.action is ActionType.IMPRESS:
                last_impress[key] = a.timestamp
            elif a.action is ActionType.CLICK:
                assert key in last_impress
                assert last_impress[key] <= a.timestamp

    def test_playtime_view_rate_in_bounds(self, world, actions):
        for a in actions:
            if a.action is ActionType.PLAYTIME:
                vrate = a.view_time / world.videos[a.video_id].duration
                assert 0 < vrate <= 1.0 + 1e-9

    def test_impressions_dominate(self, actions):
        """The funnel means impressions outnumber every other action."""
        from collections import Counter

        counts = Counter(a.action for a in actions)
        assert counts[ActionType.IMPRESS] > counts[ActionType.CLICK]
        assert counts[ActionType.CLICK] >= counts[ActionType.PLAY]
        assert counts[ActionType.PLAY] >= counts[ActionType.PLAYTIME] * 0.99

    def test_generate_partial_days(self, world):
        short = world.generate_actions(days=1)
        assert max(a.timestamp for a in short) < SECONDS_PER_DAY


class TestGroundTruth:
    def test_affinity_symmetric_to_factors(self, world):
        u, v = "u0", "v0"
        expected = float(world.user_factors[0] @ world.video_factors[0])
        assert world.affinity(u, v) == pytest.approx(expected)

    def test_click_probability_monotone_in_affinity(self, world):
        user = "u0"
        scored = sorted(
            world.videos, key=lambda v: world.affinity(user, v)
        )
        low, high = scored[0], scored[-1]
        assert world.click_probability(user, low) < world.click_probability(
            user, high
        )

    def test_best_videos_sorted_by_affinity(self, world):
        best = world.best_videos("u3", k=5)
        affinities = [world.affinity("u3", v) for v in best]
        assert affinities == sorted(affinities, reverse=True)

    def test_clicks_correlate_with_affinity(self, world, actions):
        """Engaged (clicked) videos have higher mean affinity than impressed
        non-clicked ones — the signal every model in the paper learns."""
        clicked, unclicked = [], []
        clicked_keys = {
            (a.user_id, a.video_id)
            for a in actions
            if a.action is ActionType.CLICK
        }
        for a in actions:
            if a.action is ActionType.IMPRESS:
                aff = world.affinity(a.user_id, a.video_id)
                if (a.user_id, a.video_id) in clicked_keys:
                    clicked.append(aff)
                else:
                    unclicked.append(aff)
        assert np.mean(clicked) > np.mean(unclicked) + 0.1

    def test_simulate_clicks_respects_catalogue(self, world):
        rng = np.random.default_rng(0)
        clicked = world.simulate_clicks("u0", ["v0", "ghost", "v1"], rng)
        assert "ghost" not in clicked

    def test_simulate_clicks_rate_tracks_probability(self, world):
        rng = np.random.default_rng(0)
        video = world.best_videos("u0", 1)[0]
        p = world.click_probability("u0", video)
        hits = sum(
            1 for _ in range(500) if world.simulate_clicks("u0", [video], rng)
        )
        assert hits / 500 == pytest.approx(p, abs=0.08)

    def test_genuinely_liked_requires_engagement_and_affinity(self, world, actions):
        liked = world.genuinely_liked(actions)
        for user_id, videos in liked.items():
            u = world._user_index[user_id]
            scores = world.video_factors @ world.user_factors[u]
            threshold = np.quantile(scores, 0.75)
            for video_id in videos:
                assert scores[world._video_index[video_id]] >= threshold


class TestPaperWorldConfig:
    def test_defaults(self):
        cfg = paper_world_config()
        assert cfg.n_users == 300
        assert cfg.n_videos == 400
        assert cfg.days == 7

    def test_overrides(self):
        cfg = paper_world_config(n_users=10, noise_click_rate=0.5)
        assert cfg.n_users == 10
        assert cfg.noise_click_rate == 0.5
