"""Tests for the synthetic world's behavioural regimes — the knobs that
encode the paper's noise stories (re-watching, accidental clicks,
time-limited watches)."""

import numpy as np
import pytest

from repro.data import ActionType, SyntheticWorld, WorldConfig


def _world(**overrides):
    base = dict(n_users=40, n_videos=60, n_types=4, days=2, seed=13)
    base.update(overrides)
    return SyntheticWorld(WorldConfig(**base))


class TestRewatchRegime:
    def test_pure_rewatch_draws_from_favorite_pools(self):
        world = _world(rewatch_mix=1.0, popularity_mix=0.0, favorites_per_user=5)
        actions = world.generate_actions()
        impressions_by_user: dict[str, set[str]] = {}
        for a in actions:
            if a.action is ActionType.IMPRESS:
                impressions_by_user.setdefault(a.user_id, set()).add(a.video_id)
        for user_id, impressed in impressions_by_user.items():
            idx = world._user_index[user_id]
            favorites = {f"v{j}" for j in world._favorites[idx]}
            assert impressed <= favorites
            assert len(impressed) <= 5

    def test_rewatch_creates_repeat_engagement(self):
        """With a favourites pool, users engage the same videos repeatedly
        across days — the series-viewing pattern."""
        from collections import Counter

        world = _world(rewatch_mix=0.6, days=3)
        pair_counts = Counter(
            (a.user_id, a.video_id)
            for a in world.generate_actions()
            if a.action is ActionType.CLICK
        )
        repeats = sum(1 for c in pair_counts.values() if c >= 2)
        assert repeats > 10

    def test_favorites_lean_toward_high_affinity(self):
        world = _world()
        for idx in range(5):
            user_id = f"u{idx}"
            scores = world.video_factors @ world.user_factors[idx]
            fav_scores = scores[world._favorites[idx]]
            assert fav_scores.mean() > scores.mean()


class TestNoiseRegimes:
    def test_zero_noise_clicks_are_affinity_gated(self):
        """Without accidental clicks, clicked impressions have clearly
        higher affinity than non-clicked ones."""
        world = _world(noise_click_rate=0.0)
        actions = world.generate_actions()
        clicked_keys = {
            (a.user_id, a.video_id)
            for a in actions
            if a.action is ActionType.CLICK
        }
        clicked, unclicked = [], []
        for a in actions:
            if a.action is ActionType.IMPRESS:
                bucket = (
                    clicked
                    if (a.user_id, a.video_id) in clicked_keys
                    else unclicked
                )
                bucket.append(world.affinity(a.user_id, a.video_id))
        assert np.mean(clicked) - np.mean(unclicked) > 0.15

    def test_heavy_noise_floods_clicks(self):
        """Raising the accidental-click rate raises click volume without
        raising its affinity alignment."""
        clean = _world(noise_click_rate=0.0)
        noisy = _world(noise_click_rate=0.5)
        n_clean = sum(
            1 for a in clean.generate_actions() if a.action is ActionType.CLICK
        )
        n_noisy = sum(
            1 for a in noisy.generate_actions() if a.action is ActionType.CLICK
        )
        assert n_noisy > n_clean * 1.3

    def test_time_limited_watches_shorten_views(self):
        """A high time-limited rate pushes the view-rate distribution down
        even for high-affinity engagements."""

        def mean_vrate(world):
            rates = []
            for a in world.generate_actions():
                if a.action is ActionType.PLAYTIME:
                    rates.append(
                        a.view_time / world.videos[a.video_id].duration
                    )
            return np.mean(rates)

        relaxed = _world(time_limited_rate=0.0)
        rushed = _world(time_limited_rate=0.9)
        assert mean_vrate(rushed) < mean_vrate(relaxed) - 0.1


class TestStatsPairMetrics:
    def test_pair_counts(self):
        from repro.data import dataset_stats, UserAction

        actions = [
            UserAction(0.0, "u1", "v1", ActionType.CLICK),
            UserAction(1.0, "u1", "v1", ActionType.PLAY),
            UserAction(2.0, "u1", "v2", ActionType.CLICK),
        ]
        stats = dataset_stats(actions)
        assert stats.n_actions == 3
        assert stats.n_pairs == 2
        assert stats.pair_sparsity == pytest.approx(2 / (1 * 2))
