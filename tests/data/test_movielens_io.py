"""Tests for MovieLens-format I/O and the rating->action conversion."""

import io

import pytest

from repro.data import (
    ActionType,
    UserAction,
    actions_to_log,
    parse_items,
    parse_ratings,
    write_actions,
)
from repro.data.movielens import DEFAULT_DURATION, load_ratings_file
from repro.errors import DataError


def _lines(*rows):
    return [("\t".join(str(x) for x in row)) for row in rows]


class TestParseRatings:
    def test_five_star_rating_full_funnel(self):
        actions = parse_ratings(_lines((1, 10, 5, 1000)))
        kinds = [a.action for a in actions]
        assert kinds == [
            ActionType.IMPRESS,
            ActionType.CLICK,
            ActionType.PLAY,
            ActionType.PLAYTIME,
            ActionType.LIKE,
        ]
        playtime = actions[3]
        assert playtime.view_time == pytest.approx(0.95 * DEFAULT_DURATION)

    def test_one_star_rating_click_only(self):
        actions = parse_ratings(_lines((1, 10, 1, 1000)))
        assert [a.action for a in actions] == [
            ActionType.IMPRESS,
            ActionType.CLICK,
        ]

    def test_three_star_rating_partial_watch(self):
        actions = parse_ratings(_lines((1, 10, 3, 1000)))
        playtime = [a for a in actions if a.action is ActionType.PLAYTIME][0]
        assert playtime.view_time == pytest.approx(0.45 * DEFAULT_DURATION)

    def test_ids_are_prefixed(self):
        actions = parse_ratings(_lines((7, 42, 2, 0)))
        assert actions[0].user_id == "u7"
        assert actions[0].video_id == "v42"

    def test_sorted_output(self):
        actions = parse_ratings(_lines((1, 1, 5, 2000), (2, 2, 5, 1000)))
        times = [a.timestamp for a in actions]
        assert times == sorted(times)

    def test_custom_durations(self):
        actions = parse_ratings(
            _lines((1, 10, 4, 0)), durations={"v10": 100.0}
        )
        playtime = [a for a in actions if a.action is ActionType.PLAYTIME][0]
        assert playtime.view_time == pytest.approx(75.0)

    def test_blank_and_comment_lines_skipped(self):
        actions = parse_ratings(["", "# header", "1\t2\t3\t100"])
        assert len(actions) > 0

    @pytest.mark.parametrize(
        "line",
        ["1\t2\t3", "1\t2\tthree\t100", "1\t2\t9\t100"],
    )
    def test_malformed_rejected(self, line):
        with pytest.raises(DataError):
            parse_ratings([line])

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "u.data"
        path.write_text("1\t2\t4\t100\n3\t4\t2\t200\n")
        actions = load_ratings_file(path)
        assert {a.user_id for a in actions} == {"u1", "u3"}


class TestParseItems:
    def test_basic(self):
        videos = parse_items(["1|comedy", "2|drama|3600"])
        assert videos["v1"].kind == "comedy"
        assert videos["v1"].duration == DEFAULT_DURATION
        assert videos["v2"].duration == 3600.0

    def test_malformed_rejected(self):
        with pytest.raises(DataError):
            parse_items(["only-one-field"])
        with pytest.raises(DataError):
            parse_items(["1|comedy|notanumber"])


class TestWriteActions:
    def test_round_trip_via_log(self):
        actions = parse_ratings(_lines((1, 2, 5, 100)))
        log = actions_to_log(actions)
        parsed = [
            UserAction.from_log_line(line)
            for line in log.strip().split("\n")
        ]
        assert parsed == actions

    def test_write_returns_count(self):
        actions = parse_ratings(_lines((1, 2, 3, 100)))
        sink = io.StringIO()
        assert write_actions(actions, sink) == len(actions)
