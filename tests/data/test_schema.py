"""Tests for entities and action records."""

import pytest

from repro.data import GLOBAL_GROUP, ActionType, User, UserAction, Video
from repro.errors import DataError


class TestActionType:
    def test_parse_accepts_paper_names(self):
        assert ActionType.parse("impress") is ActionType.IMPRESS
        assert ActionType.parse("PLAY") is ActionType.PLAY
        assert ActionType.parse(" playtime ") is ActionType.PLAYTIME

    def test_parse_rejects_unknown(self):
        with pytest.raises(DataError, match="unknown action type"):
            ActionType.parse("teleport")


class TestVideo:
    def test_valid_video(self):
        v = Video(video_id="v1", kind="type_0", duration=600.0)
        assert v.kind == "type_0"

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(DataError):
            Video(video_id="v1", kind="t", duration=0.0)


class TestUserDemographics:
    def test_full_attributes(self):
        user = User("u1", gender="f", age_band="young", education="uni")
        assert user.demographic_group == "f|young|uni"

    def test_partial_attributes(self):
        assert User("u1", gender="m").demographic_group == "m"

    def test_unregistered_maps_to_global(self):
        user = User("u1", registered=False, gender="m", age_band="young")
        assert user.demographic_group == GLOBAL_GROUP

    def test_registered_without_attributes_maps_to_global(self):
        assert User("u1").demographic_group == GLOBAL_GROUP


class TestUserAction:
    def test_playtime_requires_view_time(self):
        with pytest.raises(DataError):
            UserAction(0.0, "u", "v", ActionType.PLAYTIME)

    def test_playtime_with_view_time(self):
        a = UserAction(0.0, "u", "v", ActionType.PLAYTIME, view_time=120.0)
        assert a.view_time == 120.0

    def test_negative_view_time_rejected(self):
        with pytest.raises(DataError):
            UserAction(0.0, "u", "v", ActionType.CLICK, view_time=-1.0)

    def test_ordering_by_timestamp(self):
        a = UserAction(5.0, "u", "v", ActionType.CLICK)
        b = UserAction(2.0, "u2", "v2", ActionType.PLAY)
        assert sorted([a, b]) == [b, a]


class TestLogLineRoundTrip:
    def test_round_trip(self):
        a = UserAction(1234.5, "u7", "v9", ActionType.PLAYTIME, view_time=88.25)
        parsed = UserAction.from_log_line(a.to_log_line())
        assert parsed.user_id == "u7"
        assert parsed.video_id == "v9"
        assert parsed.action is ActionType.PLAYTIME
        assert parsed.timestamp == pytest.approx(1234.5)
        assert parsed.view_time == pytest.approx(88.25)

    def test_round_trip_all_action_types(self):
        for action in ActionType:
            view = 10.0 if action is ActionType.PLAYTIME else 0.0
            a = UserAction(1.0, "u", "v", action, view_time=view)
            assert UserAction.from_log_line(a.to_log_line()).action is action

    @pytest.mark.parametrize(
        "line",
        [
            "not-a-log-line",
            "1.0\tu\tv\tclick",  # too few fields
            "1.0\tu\tv\tclick\t0.0\textra",  # too many
            "abc\tu\tv\tclick\t0.0",  # bad timestamp
            "1.0\tu\tv\twarp\t0.0",  # bad action
            "1.0\t\tv\tclick\t0.0",  # empty user
            "1.0\tu\t\tclick\t0.0",  # empty video
            "1.0\tu\tv\tclick\tNaNx",  # bad view time
        ],
    )
    def test_malformed_lines_rejected(self, line):
        with pytest.raises(DataError):
            UserAction.from_log_line(line)
