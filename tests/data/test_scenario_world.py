"""Scenario-driven world dynamics + the byte-identity golden test.

The scenario refactor moved ``SyntheticWorld``'s per-day dynamics behind
a ``_DayState``; the contract is that a world with no scenario (or an
event-free one) generates **byte-identical** output to the pre-refactor
generator.  The golden digests below were captured from the pre-refactor
implementation — if they ever change, the organic world changed, which
invalidates every calibrated benchmark number in the repo.
"""

import hashlib

import numpy as np
import pytest

from repro.clock import SECONDS_PER_DAY
from repro.data import SyntheticWorld, WorldConfig
from repro.data.synthetic import paper_world_config
from repro.errors import ConfigError
from repro.eval.scenarios import (
    CatalogChurn,
    FlashCrowd,
    PreferenceDrift,
    Scenario,
    baseline,
    catalog_churn,
    cold_start,
    diurnal_wave,
    flash_crowd,
    preference_drift,
)

# Captured from the pre-scenario generator (commit before this refactor).
GOLDEN_STREAM_SMALL = (
    "1f0df065ab8d8e91c46196dfa626c6075432457efad5a93745f03e073cb4eff0"
)
GOLDEN_STREAM_PAPER = (
    "5ded020ec1bce076d7e4c8901ff216bd57101e23b23cb97afab39391625e6c88"
)
GOLDEN_ARRAYS_SMALL = (
    "fd97cfddf29bc06d1c7b63c9a05de5adb7340cb1ce2d076b71e2448f98ee3a41"
)


def _stream_digest(world):
    h = hashlib.sha256()
    for a in world.generate_actions():
        h.update(
            repr(
                (
                    round(a.timestamp, 9),
                    a.user_id,
                    a.video_id,
                    a.action.value,
                    a.view_time,
                )
            ).encode()
        )
    return h.hexdigest()


class TestByteIdentity:
    def test_default_world_stream_matches_golden(self):
        world = SyntheticWorld(
            WorldConfig(n_users=40, n_videos=60, days=3, seed=77)
        )
        assert _stream_digest(world) == GOLDEN_STREAM_SMALL

    def test_paper_world_stream_matches_golden(self):
        world = SyntheticWorld(
            paper_world_config(n_users=50, n_videos=80, days=4, seed=2016)
        )
        assert _stream_digest(world) == GOLDEN_STREAM_PAPER

    def test_world_arrays_match_golden(self):
        world = SyntheticWorld(
            WorldConfig(n_users=40, n_videos=60, days=3, seed=77)
        )
        h = hashlib.sha256()
        for arr in (
            world.user_factors,
            world.video_factors,
            world._base_popularity,
            world._activity,
        ):
            h.update(np.ascontiguousarray(arr).tobytes())
        assert h.hexdigest() == GOLDEN_ARRAYS_SMALL

    def test_event_free_scenario_is_byte_identical(self):
        cfg = WorldConfig(n_users=30, n_videos=40, days=2, seed=9)
        plain = SyntheticWorld(cfg).generate_actions()
        scenario = SyntheticWorld(cfg, scenario=baseline()).generate_actions()
        assert plain == scenario


@pytest.fixture(scope="module")
def base_cfg():
    return WorldConfig(n_users=40, n_videos=50, days=6, seed=21)


class TestFlashCrowd:
    def test_viral_video_injected_and_boosted(self, base_cfg):
        scen = flash_crowd(day=2, duration_days=2, boost=60.0)
        world = SyntheticWorld(base_cfg, scenario=scen)
        assert "viral_0" in world.videos
        assert world.videos["viral_0"].publish_time == 2 * SECONDS_PER_DAY
        actions = world.generate_actions()
        viral = [a for a in actions if a.video_id == "viral_0"]
        assert viral, "the viral video never surfaced"
        first_day = min(a.timestamp for a in viral) // SECONDS_PER_DAY
        assert first_day >= 2

        # During the event the viral video dominates impressions.
        def impressions_on(day):
            return sum(
                1
                for a in actions
                if a.video_id == "viral_0"
                and day * SECONDS_PER_DAY
                <= a.timestamp
                < (day + 1) * SECONDS_PER_DAY
            )

        assert impressions_on(2) + impressions_on(3) > 10 * (
            impressions_on(4) + impressions_on(5) + 1
        ) or impressions_on(4) + impressions_on(5) == 0

    def test_rate_spike_raises_session_volume(self, base_cfg):
        quiet = SyntheticWorld(base_cfg).generate_actions()
        spiky = SyntheticWorld(
            base_cfg,
            scenario=Scenario(
                "flash_crowd",
                (FlashCrowd(day=2, duration_days=1, rate_spike=3.0),),
            ),
        ).generate_actions()

        def count_day(actions, day):
            return sum(
                1
                for a in actions
                if day * SECONDS_PER_DAY
                <= a.timestamp
                < (day + 1) * SECONDS_PER_DAY
            )

        assert count_day(spiky, 2) > 1.5 * count_day(quiet, 2)
        # Days before the event are not byte-identical (popularity renorm
        # differs) but volume stays in the same regime.
        assert count_day(spiky, 0) < 1.5 * count_day(quiet, 0)

    def test_existing_video_can_go_viral(self, base_cfg):
        scen = flash_crowd(day=1, duration_days=1, video_id="v3")
        world = SyntheticWorld(base_cfg, scenario=scen)
        assert "viral_0" not in world.videos
        actions = world.generate_actions()
        day1 = [
            a
            for a in actions
            if SECONDS_PER_DAY <= a.timestamp < 2 * SECONDS_PER_DAY
            and a.video_id == "v3"
        ]
        assert len(day1) > 20


class TestCatalogChurn:
    def test_extras_only_surface_from_their_day(self, base_cfg):
        scen = catalog_churn(start_day=2, adds_per_day=3, retires_per_day=2)
        world = SyntheticWorld(base_cfg, scenario=scen)
        actions = world.generate_actions()
        for a in actions:
            if a.video_id.startswith("new_d"):
                available = int(a.video_id.split("_")[1][1:])
                assert a.timestamp >= available * SECONDS_PER_DAY

    def test_retired_videos_stop_appearing(self, base_cfg):
        scen = catalog_churn(start_day=1, adds_per_day=0, retires_per_day=5)
        world = SyntheticWorld(base_cfg, scenario=scen)
        actions = world.generate_actions()
        # By day 1, the 5 weakest base videos are retired.
        retired = [f"v{j}" for j in world._retire_order[:5]]
        for a in actions:
            if a.timestamp >= SECONDS_PER_DAY:
                assert a.video_id not in retired

    def test_retiring_everything_raises(self):
        cfg = WorldConfig(n_users=10, n_videos=8, days=3, seed=1)
        scen = catalog_churn(start_day=0, adds_per_day=0, retires_per_day=8)
        with pytest.raises(Exception):
            SyntheticWorld(cfg, scenario=scen).generate_actions()

    def test_cold_start_only_adds(self, base_cfg):
        scen = cold_start(start_day=1, adds_per_day=4)
        world = SyntheticWorld(base_cfg, scenario=scen)
        assert len(world.videos) == base_cfg.n_videos + 4 * 5
        actions = world.generate_actions()
        base_seen = {a.video_id for a in actions if a.video_id.startswith("v")}
        assert len(base_seen) > 0.5 * base_cfg.n_videos

    def test_id_collision_rejected(self, base_cfg):
        scen = Scenario(
            "bad", (CatalogChurn(start_day=0, adds_per_day=1),)
        )
        # Forge a collision by naming an extra after a base video.
        from repro.eval.scenarios import ExtraVideoSpec

        class Colliding(CatalogChurn):
            def extra_video_specs(self, days):
                return [ExtraVideoSpec("v0", 0, 0)]

        with pytest.raises(ConfigError):
            SyntheticWorld(
                base_cfg, scenario=Scenario("bad", (Colliding(),))
            )


class TestPreferenceDrift:
    def test_ground_truth_rotates_after_drift_day(self, base_cfg):
        scen = preference_drift(day=3, angle_degrees=90.0)
        world = SyntheticWorld(base_cfg, scenario=scen)
        before = world.affinity("u0", "v0", now=2 * SECONDS_PER_DAY)
        after = world.affinity("u0", "v0", now=3 * SECONDS_PER_DAY)
        no_time = world.affinity("u0", "v0")
        assert before == no_time  # pre-drift == base ground truth
        assert after != before

        top_before = world.best_videos("u0", k=5, now=2 * SECONDS_PER_DAY)
        top_after = world.best_videos("u0", k=5, now=4 * SECONDS_PER_DAY)
        assert top_before != top_after

    def test_rotation_preserves_norms(self, base_cfg):
        scen = preference_drift(day=1, angle_degrees=75.0)
        world = SyntheticWorld(base_cfg, scenario=scen)
        base = world.user_factors
        rotated = world._effective_user_factors(2 * SECONDS_PER_DAY)
        assert np.allclose(
            np.linalg.norm(base, axis=1), np.linalg.norm(rotated, axis=1)
        )
        assert not np.allclose(base, rotated)

    def test_click_stream_shifts_after_drift(self, base_cfg):
        scen = preference_drift(day=3, angle_degrees=120.0)
        drifted = SyntheticWorld(base_cfg, scenario=scen).generate_actions()
        plain = SyntheticWorld(base_cfg).generate_actions()

        def clicks_by_video(actions, from_day):
            out = {}
            for a in actions:
                if a.timestamp >= from_day * SECONDS_PER_DAY and a.action.value == "click":
                    out[a.video_id] = out.get(a.video_id, 0) + 1
            return out

        # Pre-drift days follow the same dynamics (same popularity path);
        # post-drift click patterns must diverge.
        assert clicks_by_video(drifted, 3) != clicks_by_video(plain, 3)


class TestDiurnalWave:
    def test_session_starts_follow_the_wave(self, base_cfg):
        scen = diurnal_wave(amplitude=0.9)
        wavy = SyntheticWorld(base_cfg, scenario=scen).generate_actions()
        # Phase -pi/2: trough at the start of the day, peak mid-day.
        sessions = [a.timestamp % SECONDS_PER_DAY for a in wavy]
        third = SECONDS_PER_DAY / 3.0
        early = sum(1 for s in sessions if s < third)
        mid = sum(1 for s in sessions if third <= s < 2 * third)
        assert mid > 1.3 * early

    def test_total_volume_roughly_preserved(self, base_cfg):
        plain = SyntheticWorld(base_cfg).generate_actions()
        wavy = SyntheticWorld(
            base_cfg, scenario=diurnal_wave(amplitude=0.7)
        ).generate_actions()
        assert 0.7 < len(wavy) / len(plain) < 1.3
