"""Batch read/write (``mget``/``mput``) across every store implementation.

The contract (``kvstore/store.py``): results and versions come back in
input order, missing/expired keys yield the default, duplicates are
resolved independently on read and written in order (last wins) on write,
and wrappers must route batches through their inner store's batch ops so
sharding/caching/instrumentation/fault-injection all see them.
"""

import pytest

from repro.clock import VirtualClock
from repro.reliability.overload import CircuitBreaker
from repro.errors import CircuitOpenError, TransientKVError
from repro.kvstore import (
    BreakerKVStore,
    InMemoryKVStore,
    Namespace,
    ReadThroughCache,
    ShardedKVStore,
)
from repro.obs import Observability
from repro.reliability import FlakyKVStore


def _stores():
    return {
        "memory": InMemoryKVStore(),
        "sharded": ShardedKVStore(n_shards=4),
        "cache": ReadThroughCache(InMemoryKVStore(), capacity=8),
        "namespace": Namespace(InMemoryKVStore(), "ns"),
    }


@pytest.fixture(params=["memory", "sharded", "cache", "namespace"])
def store(request):
    return _stores()[request.param]


class TestMget:
    def test_results_in_input_order(self, store):
        for i in range(10):
            store.put(f"k{i}", i)
        keys = [f"k{i}" for i in (7, 2, 9, 0, 4)]
        assert store.mget(keys) == [7, 2, 9, 0, 4]

    def test_missing_keys_get_default(self, store):
        store.put("present", 1)
        assert store.mget(["absent", "present", "gone"], default=-1) == [
            -1,
            1,
            -1,
        ]

    def test_duplicate_keys_resolved_independently(self, store):
        store.put("dup", "x")
        assert store.mget(["dup", "dup", "missing"]) == ["x", "x", None]

    def test_empty_batch(self, store):
        assert store.mget([]) == []

    def test_matches_scalar_gets(self, store):
        for i in range(6):
            store.put(f"k{i}", i * i)
        keys = [f"k{i}" for i in range(8)]  # two misses at the tail
        assert store.mget(keys) == [store.get(k) for k in keys]


class TestMput:
    def test_writes_all_and_returns_versions(self, store):
        versions = store.mput([(f"k{i}", i) for i in range(5)])
        assert len(versions) == 5
        assert all(isinstance(v, int) for v in versions)
        assert store.mget([f"k{i}" for i in range(5)]) == list(range(5))

    def test_duplicate_keys_last_wins(self, store):
        store.mput([("k", "first"), ("k", "second")])
        assert store.get("k") == "second"

    def test_versions_advance(self, store):
        (v1,) = store.mput([("k", "a")])
        (v2,) = store.mput([("k", "b")])
        assert v2 > v1

    def test_empty_batch(self, store):
        assert store.mput([]) == []


class TestTTL:
    def test_expired_entries_read_as_default(self):
        clock = VirtualClock(0.0)
        store = InMemoryKVStore(clock=clock)
        store.mput([("a", 1), ("b", 2)], ttl=10.0)
        clock.advance(11.0)
        assert store.mget(["a", "b"], default="gone") == ["gone", "gone"]


class TestShardedRouting:
    def test_batch_reaches_every_shard(self):
        store = ShardedKVStore(n_shards=4)
        keys = [f"k{i}" for i in range(32)]
        store.mput([(k, k.upper()) for k in keys])
        assert store.mget(keys) == [k.upper() for k in keys]
        # Every key is readable from its owning shard via scalar get too.
        assert [store.get(k) for k in keys] == [k.upper() for k in keys]


class TestCacheSemantics:
    def test_mget_serves_hits_from_cache_and_fills_misses(self):
        backing = InMemoryKVStore()
        cache = ReadThroughCache(backing, capacity=8)
        backing.put("a", 1)
        backing.put("b", 2)
        cache.get("a")  # warm one key
        hits_before = cache.hits
        assert cache.mget(["a", "b"]) == [1, 2]
        assert cache.hits == hits_before + 1  # "a" from cache, "b" fetched
        # "b" is now cached: a backing change is not visible until eviction.
        backing.put("b", 99)
        assert cache.mget(["b"]) == [2]

    def test_mput_updates_cache_and_backing(self):
        backing = InMemoryKVStore()
        cache = ReadThroughCache(backing, capacity=8)
        cache.mput([("x", 1), ("y", 2)])
        assert backing.get("x") == 1
        assert cache.mget(["x", "y"]) == [1, 2]


class TestNamespaceIsolation:
    def test_batches_stay_inside_the_namespace(self):
        backing = InMemoryKVStore()
        left = Namespace(backing, "left")
        right = Namespace(backing, "right")
        left.mput([("k", "L")])
        right.mput([("k", "R")])
        assert left.mget(["k"]) == ["L"]
        assert right.mget(["k"]) == ["R"]


class TestBreaker:
    def test_batch_counts_as_one_operation(self):
        flaky = FlakyKVStore(InMemoryKVStore())
        breaker = BreakerKVStore(
            flaky,
            CircuitBreaker(
                failure_threshold=2,
                reset_timeout=60.0,
                clock=VirtualClock(0.0),
            ),
        )
        breaker.mput([(f"k{i}", i) for i in range(4)])
        assert breaker.mget([f"k{i}" for i in range(4)]) == list(range(4))
        flaky.fail_next(2)
        with pytest.raises(TransientKVError):
            breaker.mget(["k0"])
        with pytest.raises(TransientKVError):
            breaker.mget(["k0"])
        with pytest.raises(CircuitOpenError):
            breaker.mget(["k0"])  # breaker now open


class TestFaultInjection:
    def test_flaky_store_fallback_goes_through_injection(self):
        # FlakyKVStore does not override mget/mput: the base-class loop
        # fallback must route through the injected scalar ops.
        flaky = FlakyKVStore(InMemoryKVStore())
        flaky.mput([("a", 1), ("b", 2)])
        flaky.fail_next(1)
        with pytest.raises(TransientKVError):
            flaky.mget(["a", "b"])
        assert flaky.errors_raised == 1


class TestInstrumented:
    def test_batch_ops_counted_with_key_totals(self):
        obs = Observability.deterministic()
        store = obs.instrument_store(InMemoryKVStore())
        store.mput([(f"k{i}", i) for i in range(3)])
        store.mget([f"k{i}" for i in range(5)])
        doc = obs.registry.snapshot()
        batch = doc["kvstore_batch_keys_total"]
        by_op = {
            tuple(sorted(series["labels"].items())): series["value"]
            for series in batch["series"]
        }
        assert by_op[(("op", "mput"),)] == 3
        assert by_op[(("op", "mget"),)] == 5
