"""Tests for the read-through cache and write combiner (§5.1 optimizations)."""

import pytest

from repro.kvstore import InMemoryKVStore, ReadThroughCache, WriteCombiner


class TestReadThroughCache:
    def test_read_fills_cache(self):
        backing = InMemoryKVStore()
        backing.put("k", "v")
        cache = ReadThroughCache(backing, capacity=4)
        assert cache.get("k") == "v"
        assert cache.misses == 1
        assert cache.get("k") == "v"
        assert cache.hits == 1

    def test_miss_on_absent_key_returns_default(self):
        cache = ReadThroughCache(InMemoryKVStore(), capacity=4)
        assert cache.get("nope", "dflt") == "dflt"
        # absent keys are not cached
        assert cache.cache_size == 0

    def test_write_through(self):
        backing = InMemoryKVStore()
        cache = ReadThroughCache(backing, capacity=4)
        cache.put("k", 1)
        assert backing.get("k") == 1
        assert cache.get("k") == 1
        assert cache.hits == 1  # served from cache

    def test_lru_eviction(self):
        backing = InMemoryKVStore()
        for i in range(5):
            backing.put(f"k{i}", i)
        cache = ReadThroughCache(backing, capacity=3)
        for i in range(4):
            cache.get(f"k{i}")
        # k0 is the least recently used and must have been evicted
        assert cache.cache_size == 3
        cache.get("k0")
        assert cache.misses == 5

    def test_lru_touch_on_read(self):
        backing = InMemoryKVStore()
        for i in range(4):
            backing.put(f"k{i}", i)
        cache = ReadThroughCache(backing, capacity=2)
        cache.get("k0")
        cache.get("k1")
        cache.get("k0")  # touch k0 so k1 becomes LRU
        cache.get("k2")  # evicts k1
        cache.get("k0")
        assert cache.hits == 2  # second k0 read and final k0 read

    def test_invalidate(self):
        backing = InMemoryKVStore()
        backing.put("k", "old")
        cache = ReadThroughCache(backing, capacity=4)
        cache.get("k")
        backing.put("k", "new")  # external writer
        assert cache.get("k") == "old"  # stale until invalidated
        cache.invalidate("k")
        assert cache.get("k") == "new"

    def test_hit_rate(self):
        backing = InMemoryKVStore()
        backing.put("k", 1)
        cache = ReadThroughCache(backing, capacity=2)
        assert cache.hit_rate == 0.0
        cache.get("k")
        cache.get("k")
        cache.get("k")
        assert cache.hit_rate == pytest.approx(2 / 3)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ReadThroughCache(InMemoryKVStore(), capacity=0)


class TestWriteCombiner:
    def test_combines_increments_locally(self):
        backing = InMemoryKVStore()
        combiner = WriteCombiner(backing, combine=lambda a, b: a + b, flush_every=100)
        for _ in range(10):
            combiner.add("counter", 1)
        assert combiner.pending_keys == 1
        assert backing.get("counter") is None  # nothing written yet
        combiner.flush()
        assert backing.get("counter") == 10

    def test_flush_merges_with_existing_value(self):
        backing = InMemoryKVStore()
        backing.put("counter", 5)
        combiner = WriteCombiner(backing, combine=lambda a, b: a + b, flush_every=100)
        combiner.add("counter", 3)
        combiner.flush()
        assert backing.get("counter") == 8

    def test_auto_flush_threshold(self):
        backing = InMemoryKVStore()
        combiner = WriteCombiner(backing, combine=lambda a, b: a + b, flush_every=3)
        combiner.add("a", 1)
        combiner.add("b", 1)
        assert backing.get("a") is None
        combiner.add("a", 1)  # third buffered update triggers flush
        assert backing.get("a") == 2
        assert backing.get("b") == 1
        assert combiner.pending_keys == 0

    def test_flush_returns_key_count(self):
        backing = InMemoryKVStore()
        combiner = WriteCombiner(backing, combine=lambda a, b: a + b, flush_every=100)
        combiner.add("a", 1)
        combiner.add("b", 1)
        combiner.add("a", 1)
        assert combiner.flush() == 2
        assert combiner.flush() == 0

    def test_initial_factory(self):
        backing = InMemoryKVStore()
        combiner = WriteCombiner(
            backing,
            combine=lambda a, b: a | b,
            initial=set,
            apply=lambda cur, inc: cur | inc,
            flush_every=100,
        )
        combiner.add("s", {1})
        combiner.add("s", {2})
        combiner.flush()
        assert backing.get("s") == {1, 2}

    def test_combiner_equivalent_to_direct_writes(self):
        """Associativity check: combined result == one-by-one updates."""
        direct = InMemoryKVStore()
        combined = InMemoryKVStore()
        combiner = WriteCombiner(combined, combine=lambda a, b: a + b, flush_every=7)
        values = [(f"k{i % 5}", i) for i in range(100)]
        for key, delta in values:
            direct.update(key, lambda x, d=delta: x + d, default=0)
            combiner.add(key, delta)
        combiner.flush()
        assert dict(direct.items()) == dict(combined.items())

    def test_flush_every_validation(self):
        with pytest.raises(ValueError):
            WriteCombiner(InMemoryKVStore(), combine=lambda a, b: a, flush_every=0)
