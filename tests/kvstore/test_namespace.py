"""Tests for namespaced KV store views."""

import pytest

from repro.errors import KeyNotFound
from repro.kvstore import InMemoryKVStore, Namespace


@pytest.fixture
def backing():
    return InMemoryKVStore()


class TestIsolation:
    def test_same_key_different_namespaces(self, backing):
        users = Namespace(backing, "user")
        videos = Namespace(backing, "video")
        users.put("id1", "a user")
        videos.put("id1", "a video")
        assert users.get("id1") == "a user"
        assert videos.get("id1") == "a video"

    def test_delete_scoped(self, backing):
        a = Namespace(backing, "a")
        b = Namespace(backing, "b")
        a.put("k", 1)
        b.put("k", 2)
        a.delete("k")
        assert a.get("k") is None
        assert b.get("k") == 2

    def test_keys_only_own_namespace(self, backing):
        a = Namespace(backing, "a")
        b = Namespace(backing, "b")
        a.put("x", 1)
        a.put("y", 2)
        b.put("z", 3)
        assert set(a.keys()) == {"x", "y"}
        assert set(b.keys()) == {"z"}

    def test_len_scoped(self, backing):
        a = Namespace(backing, "a")
        Namespace(backing, "b").put("k", 0)
        a.put("k", 0)
        assert len(a) == 1

    def test_empty_prefix_rejected(self, backing):
        with pytest.raises(ValueError):
            Namespace(backing, "")

    def test_raw_backing_keys_are_wrapped(self, backing):
        Namespace(backing, "ns").put("k", 1)
        assert ("ns", "k") in backing


class TestDelegatedOps:
    def test_strict_get(self, backing):
        ns = Namespace(backing, "ns")
        with pytest.raises(KeyNotFound):
            ns.get_strict("missing")

    def test_update_and_setdefault(self, backing):
        ns = Namespace(backing, "ns")
        ns.update("c", lambda x: x + 1, default=0)
        ns.update("c", lambda x: x + 1, default=0)
        assert ns.get("c") == 2
        assert ns.setdefault("c", lambda: 99) == 2

    def test_cas(self, backing):
        ns = Namespace(backing, "ns")
        v = ns.put("k", "a")
        ns.compare_and_set("k", "b", v)
        assert ns.get("k") == "b"

    def test_contains(self, backing):
        ns = Namespace(backing, "ns")
        assert "k" not in ns
        ns.put("k", None)
        assert "k" in ns

    def test_nested_namespaces_do_not_collide(self, backing):
        outer = Namespace(backing, "outer")
        inner = Namespace(outer, "inner")
        outer.put("k", "outer-value")
        inner.put("k", "inner-value")
        assert outer.get("k") == "outer-value"
        assert inner.get("k") == "inner-value"
