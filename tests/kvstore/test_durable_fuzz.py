"""Property-style corruption fuzz for the durable store.

The contract under arbitrary byte damage to segment files: ``open()``
either recovers cleanly or raises a typed
:class:`~repro.errors.CorruptSegmentError` — and when it recovers, every
surviving read returns a value that was *genuinely written for that key*
at some point.  Silent wrong values are the one outcome that must never
happen, and the per-record checksum makes them structurally impossible.

Seeded ``random`` keeps every case reproducible from the test id.
"""

import random

import pytest

from repro.errors import CorruptSegmentError
from repro.kvstore import DurableKVStore


def _build_store(root, rng):
    """Write a multi-segment store; return {key: [every value written]}."""
    history = {}
    with DurableKVStore(
        root, fsync="never", segment_max_bytes=512, auto_compact=False
    ) as store:
        n_keys = rng.randint(5, 25)
        for step in range(rng.randint(40, 120)):
            key = f"k{rng.randint(0, n_keys - 1)}"
            roll = rng.random()
            if roll < 0.15 and key in history:
                store.delete(key)
                history[key].append(None)  # tombstone marker
            else:
                # the value embeds its key, so a record surfacing under
                # the wrong key is detectable
                value = (key, step, rng.random())
                store.put(key, value)
                history.setdefault(key, []).append(value)
    return history


def _damage(root, rng):
    """Flip or truncate random bytes in random segment files."""
    segments = sorted(root.glob("seg-*.log"))
    victims = rng.sample(segments, k=rng.randint(1, len(segments)))
    for path in victims:
        data = bytearray(path.read_bytes())
        if not data:
            continue
        if rng.random() < 0.5:
            for _ in range(rng.randint(1, 8)):
                data[rng.randrange(len(data))] ^= 1 << rng.randrange(8)
            path.write_bytes(bytes(data))
        else:
            path.write_bytes(bytes(data[: rng.randrange(len(data))]))


@pytest.mark.parametrize("seed", range(25))
def test_damaged_store_recovers_cleanly_or_raises_typed_error(tmp_path, seed):
    rng = random.Random(seed)
    root = tmp_path / "kv"
    history = _build_store(root, rng)
    _damage(root, rng)

    try:
        store = DurableKVStore(root, fsync="never")
    except CorruptSegmentError:
        return  # typed refusal is an acceptable outcome for sealed damage

    with store:
        for key, values in history.items():
            got = store.get(key, default="__absent__")
            if got == "__absent__" or got is None:
                continue  # lost to truncation or a surviving tombstone: fine
            assert got in values, (
                f"seed {seed}: key {key} returned {got!r}, which was "
                f"never written for it"
            )
            assert got[0] == key


@pytest.mark.parametrize("seed", range(5))
def test_damage_confined_to_newest_segment_loses_only_a_suffix(tmp_path, seed):
    """Truncating the active segment is the crash case proper: open()
    must succeed outright and keep a prefix of that segment's writes."""
    rng = random.Random(1000 + seed)
    root = tmp_path / "kv"
    history = _build_store(root, rng)

    newest = sorted(root.glob("seg-*.log"))[-1]
    data = newest.read_bytes()
    if len(data) > 1:
        newest.write_bytes(data[: rng.randrange(1, len(data))])

    with DurableKVStore(root, fsync="never") as store:
        for key in history:
            got = store.get(key, default="__absent__")
            if got not in ("__absent__", None):
                assert got in history[key]
