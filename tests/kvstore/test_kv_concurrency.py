"""Concurrency tests: the store must be safe under real thread interleaving."""

import threading

from repro.errors import CASConflict
from repro.kvstore import InMemoryKVStore, ShardedKVStore


def _hammer(fn, n_threads=8, n_iter=200):
    """Run ``fn(thread_idx, i)`` from ``n_threads`` threads concurrently."""
    errors = []
    barrier = threading.Barrier(n_threads)

    def run(thread_idx):
        try:
            barrier.wait()  # maximise interleaving
            for i in range(n_iter):
                fn(thread_idx, i)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [
        threading.Thread(target=run, args=(t,)) for t in range(n_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors


class TestAtomicUpdate:
    def test_concurrent_increments_lose_nothing(self):
        store = InMemoryKVStore()
        _hammer(lambda t, i: store.update("n", lambda x: x + 1, default=0))
        assert store.get("n") == 8 * 200

    def test_concurrent_increments_sharded(self):
        store = ShardedKVStore(n_shards=4)
        _hammer(
            lambda t, i: store.update(f"k{i % 10}", lambda x: x + 1, default=0)
        )
        assert sum(store.get(f"k{i}") for i in range(10)) == 8 * 200

    def test_concurrent_puts_distinct_keys(self):
        store = ShardedKVStore(n_shards=4)
        _hammer(lambda t, i: store.put((t, i), i))
        assert len(store) == 8 * 200


class TestCASUnderContention:
    def test_exactly_one_winner_per_round(self):
        store = InMemoryKVStore()
        store.put("slot", "init")
        wins = []
        lock = threading.Lock()

        def contender(i):
            version = store.version("slot")
            try:
                store.compare_and_set("slot", f"w{i}", version)
                with lock:
                    wins.append(i)
            except CASConflict:
                pass

        threads = [
            threading.Thread(target=contender, args=(i,)) for i in range(16)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # At least one thread must have won, and the final value must be a
        # value some winner wrote.
        assert wins
        assert store.get("slot") in {f"w{i}" for i in wins}

    def test_version_total_order(self):
        """Versions observed after N successful writes equal N."""
        store = InMemoryKVStore()
        _hammer(lambda t, i: store.put("k", i), n_threads=4, n_iter=100)
        assert store.version("k") == 400
