"""Concurrency tests: the store must be safe under real thread interleaving."""

import threading

from repro.clock import VirtualClock
from repro.errors import CASConflict
from repro.kvstore import InMemoryKVStore, ShardedKVStore


def _hammer(fn, n_threads=8, n_iter=200):
    """Run ``fn(thread_idx, i)`` from ``n_threads`` threads concurrently."""
    errors = []
    barrier = threading.Barrier(n_threads)

    def run(thread_idx):
        try:
            barrier.wait()  # maximise interleaving
            for i in range(n_iter):
                fn(thread_idx, i)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [
        threading.Thread(target=run, args=(t,)) for t in range(n_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors


class TestAtomicUpdate:
    def test_concurrent_increments_lose_nothing(self):
        store = InMemoryKVStore()
        _hammer(lambda t, i: store.update("n", lambda x: x + 1, default=0))
        assert store.get("n") == 8 * 200

    def test_concurrent_increments_sharded(self):
        store = ShardedKVStore(n_shards=4)
        _hammer(
            lambda t, i: store.update(f"k{i % 10}", lambda x: x + 1, default=0)
        )
        assert sum(store.get(f"k{i}") for i in range(10)) == 8 * 200

    def test_concurrent_puts_distinct_keys(self):
        store = ShardedKVStore(n_shards=4)
        _hammer(lambda t, i: store.put((t, i), i))
        assert len(store) == 8 * 200


class TestCASUnderContention:
    def test_exactly_one_winner_per_round(self):
        store = InMemoryKVStore()
        store.put("slot", "init")
        wins = []
        lock = threading.Lock()

        def contender(i):
            version = store.version("slot")
            try:
                store.compare_and_set("slot", f"w{i}", version)
                with lock:
                    wins.append(i)
            except CASConflict:
                pass

        threads = [
            threading.Thread(target=contender, args=(i,)) for i in range(16)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # At least one thread must have won, and the final value must be a
        # value some winner wrote.
        assert wins
        assert store.get("slot") in {f"w{i}" for i in wins}

    def test_version_total_order(self):
        """Versions observed after N successful writes equal N."""
        store = InMemoryKVStore()
        _hammer(lambda t, i: store.put("k", i), n_threads=4, n_iter=100)
        assert store.version("k") == 400

    def test_sharded_cas_retry_loop_loses_no_increments(self):
        """The canonical optimistic read-modify-write, across shards.

        Every thread increments a handful of hot keys via
        ``compare_and_set`` in a retry loop; CAS conflicts mean *retry*,
        never a lost update, so the final sum is exact regardless of how
        often the race window is actually hit.
        """
        store = ShardedKVStore(n_shards=4)
        keys = [f"hot{k}" for k in range(3)]

        def increment(t, i):
            key = keys[i % len(keys)]
            while True:
                current = store.get(key, 0)
                version = store.version(key)
                try:
                    store.compare_and_set(key, current + 1, version)
                    return
                except CASConflict:
                    continue

        _hammer(increment, n_threads=8, n_iter=150)
        assert sum(store.get(key) for key in keys) == 8 * 150


class TestTTLUnderContention:
    def test_concurrent_ttl_writes_and_expiry_sharded(self):
        """TTL expiry stays correct while many threads read and write.

        Even-numbered keys are ephemeral, odd ones durable.  After time
        passes, concurrent readers must see every ephemeral key as gone
        (lazy expiry) and every durable key intact, from all threads.
        """
        clock = VirtualClock()
        store = ShardedKVStore(n_shards=4, clock=clock)

        _hammer(
            lambda t, i: store.put(
                (t, i), i, ttl=5.0 if i % 2 == 0 else None
            ),
            n_threads=8,
            n_iter=100,
        )
        assert len(store) == 8 * 100

        clock.advance(10.0)  # everything ephemeral is now past its expiry
        misreads = []
        misread_lock = threading.Lock()

        def read(t, i):
            value = store.get((t, i))
            expected = None if i % 2 == 0 else i
            if value != expected:
                with misread_lock:
                    misreads.append((t, i, value))

        _hammer(read, n_threads=8, n_iter=100)
        assert not misreads
        # Lazy gets already evicted the even keys; sweep() clears any
        # expired entries nobody happened to read.
        store.sweep()
        assert len(store) == 8 * 50

    def test_rewriting_expired_key_under_contention(self):
        """Threads racing to resurrect an expired key never corrupt it."""
        clock = VirtualClock()
        store = ShardedKVStore(n_shards=2, clock=clock)
        store.put("k", "old", ttl=1.0)
        clock.advance(2.0)

        _hammer(
            lambda t, i: store.update("k", lambda x: x + 1, default=0),
            n_threads=8,
            n_iter=50,
        )
        # The expired value never leaks into the counter restart.
        assert store.get("k") == 8 * 50
