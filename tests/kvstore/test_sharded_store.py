"""Tests for the sharded KV store."""

import pytest

from repro.errors import KeyNotFound
from repro.kvstore import ShardedKVStore


@pytest.fixture
def store():
    return ShardedKVStore(n_shards=8)


class TestSharding:
    def test_key_always_maps_to_same_shard(self, store):
        for key in ("u1", "v9", ("user", "x")):
            assert store.shard_index(key) == store.shard_index(key)

    def test_shard_index_in_range(self, store):
        for i in range(200):
            assert 0 <= store.shard_index(f"k{i}") < 8

    def test_keys_spread_across_shards(self, store):
        for i in range(400):
            store.put(f"key-{i}", i)
        sizes = store.shard_sizes()
        assert sum(sizes) == 400
        assert all(size > 10 for size in sizes)

    def test_value_lives_on_owning_shard(self, store):
        store.put("k", "v")
        shard = store.shard_for("k")
        assert shard.get("k") == "v"
        others = [s for s in store._shards if s is not shard]
        assert all("k" not in s for s in others)

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            ShardedKVStore(n_shards=0)

    def test_single_shard_works(self):
        store = ShardedKVStore(n_shards=1)
        store.put("a", 1)
        assert store.get("a") == 1


class TestDelegation:
    def test_get_put_delete(self, store):
        store.put("k", 1)
        assert store.get("k") == 1
        assert "k" in store
        assert store.delete("k")
        assert store.get("k") is None

    def test_get_strict(self, store):
        with pytest.raises(KeyNotFound):
            store.get_strict("missing")

    def test_update(self, store):
        store.update("counter", lambda x: x + 5, default=0)
        assert store.get("counter") == 5

    def test_cas(self, store):
        version = store.put("k", "a")
        store.compare_and_set("k", "b", version)
        assert store.get("k") == "b"

    def test_len_sums_shards(self, store):
        for i in range(50):
            store.put(f"k{i}", i)
        assert len(store) == 50

    def test_keys_covers_all_shards(self, store):
        expected = {f"k{i}" for i in range(50)}
        for key in expected:
            store.put(key, 0)
        assert set(store.keys()) == expected

    def test_clear(self, store):
        store.put("a", 1)
        store.clear()
        assert len(store) == 0

    def test_version_tracking(self, store):
        assert store.version("k") == 0
        store.put("k", 1)
        store.put("k", 2)
        assert store.version("k") == 2
