"""Tests for the log-structured durable KV tier.

Covers the KVStore contract on disk, persistence across reopen, segment
rotation, torn-tail truncation (with metrics), sealed-segment corruption,
compaction invariants (including tombstone retention), the incremental-
checkpoint segment handshake, and fsync policies.
"""

import pytest

from repro.errors import (
    CASConflict,
    CorruptSegmentError,
    DurableStoreError,
    KeyNotFound,
)
from repro.kvstore import (
    DurableKVStore,
    InMemoryKVStore,
    ReadThroughCache,
    drop_caches,
    unwrap_durable,
)
from repro.obs import MetricsRegistry


def metric(registry, name):
    doc = registry.snapshot()[name]
    return doc["series"][0]["value"] if doc["series"] else 0.0


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def now(self):
        return self.t

    def advance(self, dt):
        self.t += dt


@pytest.fixture()
def store(tmp_path):
    with DurableKVStore(tmp_path / "kv", fsync="never") as s:
        yield s


class TestKVContract:
    def test_put_get_roundtrip(self, store):
        assert store.put("k", {"a": [1, 2]}) == 1
        assert store.get("k") == {"a": [1, 2]}
        assert store.get("absent") is None
        assert store.get("absent", "dflt") == "dflt"

    def test_get_strict_raises(self, store):
        with pytest.raises(KeyNotFound):
            store.get_strict("nope")

    def test_versions_increment(self, store):
        assert store.put("k", 1) == 1
        assert store.put("k", 2) == 2
        assert store.version("k") == 2
        assert store.version("absent") == 0

    def test_delete(self, store):
        store.put("k", 1)
        assert store.delete("k") is True
        assert store.delete("k") is False
        assert store.get("k") is None
        assert store.version("k") == 0

    def test_version_resets_after_delete(self, store):
        store.put("k", 1)
        store.put("k", 2)
        store.delete("k")
        assert store.put("k", 3) == 1

    def test_update(self, store):
        assert store.update("n", lambda x: x + 1, default=0) == 1
        assert store.update("n", lambda x: x + 1, default=0) == 2
        assert store.version("n") == 2

    def test_compare_and_set(self, store):
        v = store.compare_and_set("k", "a", 0)
        assert v == 1
        assert store.compare_and_set("k", "b", 1) == 2
        with pytest.raises(CASConflict) as exc:
            store.compare_and_set("k", "c", 1)
        assert exc.value.actual == 2
        assert store.get("k") == "b"

    def test_contains_len_keys(self, store):
        store.put("a", 1)
        store.put("b", 2)
        assert "a" in store
        assert "nope" not in store
        assert len(store) == 2
        assert sorted(store.keys()) == ["a", "b"]

    def test_mget_mput(self, store):
        versions = store.mput([("a", 1), ("b", 2), ("a", 3)])
        assert versions == [1, 1, 2]
        assert store.mget(["a", "b", "zz"], default=-1) == [3, 2, -1]

    def test_values_are_fresh_objects(self, store):
        store.put("k", [1, 2])
        first = store.get("k")
        first.append(3)
        assert store.get("k") == [1, 2]

    def test_ttl_expiry(self, tmp_path):
        clock = FakeClock()
        store = DurableKVStore(tmp_path / "kv", fsync="never", clock=clock)
        store.put("k", "v", ttl=10.0)
        assert store.get("k") == "v"
        clock.advance(11.0)
        assert store.get("k") is None
        assert "k" not in store
        assert store.version("k") == 0
        store.close()

    def test_ttl_validation(self, store):
        with pytest.raises(ValueError):
            store.put("k", "v", ttl=0)

    def test_constructor_validation(self, tmp_path):
        with pytest.raises(ValueError):
            DurableKVStore(tmp_path / "a", segment_max_bytes=1)
        with pytest.raises(ValueError):
            DurableKVStore(tmp_path / "b", fsync="sometimes")
        with pytest.raises(ValueError):
            DurableKVStore(tmp_path / "c", compact_min_dead_ratio=0.0)

    def test_matches_in_memory_reference(self, store):
        """Interleaved ops agree with the in-memory store, op for op."""
        reference = InMemoryKVStore()
        ops = [
            ("put", "a", 1), ("put", "b", 2), ("put", "a", 3),
            ("delete", "b"), ("put", "b", 9), ("update", "a"),
            ("delete", "zz"), ("put", "c", [1, 2]),
        ]
        for op in ops:
            if op[0] == "put":
                assert store.put(op[1], op[2]) == reference.put(op[1], op[2])
            elif op[0] == "delete":
                assert store.delete(op[1]) == reference.delete(op[1])
            else:
                bump = lambda x: (x or 0) + 10
                assert store.update(op[1], bump) == reference.update(op[1], bump)
        assert dict(zip(store.keys(), store.mget(store.keys()))) == dict(
            reference.items()
        )


class TestPersistence:
    def test_reopen_sees_everything(self, tmp_path):
        with DurableKVStore(tmp_path / "kv", fsync="never") as store:
            for i in range(100):
                store.put(f"k{i}", {"i": i})
            store.put("k0", "rewritten")
            store.delete("k1")

        with DurableKVStore(tmp_path / "kv", fsync="never") as reopened:
            assert len(reopened) == 99
            assert reopened.get("k0") == "rewritten"
            assert reopened.get("k1") is None
            assert reopened.get("k42") == {"i": 42}
            assert reopened.version("k0") == 2

    def test_tombstone_survives_reopen(self, tmp_path):
        with DurableKVStore(tmp_path / "kv", fsync="never") as store:
            store.put("k", "v")
            store.delete("k")
        with DurableKVStore(tmp_path / "kv", fsync="never") as reopened:
            assert reopened.get("k") is None
            assert reopened.put("k", "again") == 1

    def test_ttl_not_resurrected_on_reopen(self, tmp_path):
        clock = FakeClock()
        with DurableKVStore(tmp_path / "kv", fsync="never", clock=clock) as s:
            s.put("k", "v", ttl=5.0)
        clock.advance(10.0)
        with DurableKVStore(tmp_path / "kv", fsync="never", clock=clock) as s:
            assert s.get("k") is None

    def test_segment_rotation(self, tmp_path):
        store = DurableKVStore(
            tmp_path / "kv", fsync="never", segment_max_bytes=256,
            auto_compact=False,
        )
        for i in range(60):
            store.put(f"key-{i:04d}", "x" * 40)
        assert store.stats()["segments"] > 1
        # every key still readable across segments, before and after reopen
        assert store.get("key-0000") == "x" * 40
        store.close()
        with DurableKVStore(tmp_path / "kv", fsync="never") as reopened:
            assert len(reopened) == 60
            assert reopened.get("key-0059") == "x" * 40

    def test_clear_removes_files(self, tmp_path):
        store = DurableKVStore(tmp_path / "kv", fsync="never")
        store.put("k", "v")
        store.clear()
        assert len(store) == 0
        assert list((tmp_path / "kv").glob("seg-*")) == []
        # still usable after clear
        store.put("k2", "v2")
        assert store.get("k2") == "v2"
        store.close()


class TestTornTail:
    def _newest_segment(self, root):
        return sorted(root.glob("seg-*.log"))[-1]

    def test_torn_tail_truncated_with_metric(self, tmp_path):
        with DurableKVStore(tmp_path / "kv", fsync="never") as store:
            store.put("a", "first")
            store.put("b", "second")
        seg = self._newest_segment(tmp_path / "kv")
        good = seg.read_bytes()
        seg.write_bytes(good + b"\x13\x37partial-record")

        registry = MetricsRegistry()
        with DurableKVStore(
            tmp_path / "kv", fsync="never", registry=registry
        ) as reopened:
            assert reopened.get("a") == "first"
            assert reopened.get("b") == "second"
        assert metric(registry, "durable_kv_torn_tail_truncations_total") == 1.0
        assert metric(registry, "durable_kv_truncated_bytes_total") == float(
            len(b"\x13\x37partial-record")
        )
        assert seg.read_bytes() == good  # file physically truncated

    def test_torn_record_mid_write_drops_only_the_tail(self, tmp_path):
        with DurableKVStore(tmp_path / "kv", fsync="never") as store:
            store.put("a", 1)
        seg = self._newest_segment(tmp_path / "kv")
        data = seg.read_bytes()
        seg.write_bytes(data + data[: len(data) // 2])  # half a record

        with DurableKVStore(tmp_path / "kv", fsync="never") as reopened:
            assert reopened.get("a") == 1
            assert len(reopened) == 1

    def test_corrupt_sealed_segment_raises(self, tmp_path):
        store = DurableKVStore(
            tmp_path / "kv", fsync="never", segment_max_bytes=128,
            auto_compact=False,
        )
        for i in range(20):
            store.put(f"k{i}", "x" * 30)
        store.close()
        segments = sorted((tmp_path / "kv").glob("seg-*.log"))
        assert len(segments) > 1
        # flip one payload byte in the OLDEST (sealed) segment
        data = bytearray(segments[0].read_bytes())
        data[-1] ^= 0xFF
        segments[0].write_bytes(bytes(data))

        with pytest.raises(CorruptSegmentError) as exc:
            DurableKVStore(tmp_path / "kv", fsync="never")
        assert exc.value.segment == segments[0].name

    def test_checksum_reverified_on_read(self, tmp_path):
        """Corruption that lands after open is still caught at read time."""
        store = DurableKVStore(tmp_path / "kv", fsync="never")
        store.put("k", "value")
        store.sync()
        seg = self._newest_segment(tmp_path / "kv")
        data = bytearray(seg.read_bytes())
        data[-1] ^= 0xFF
        with open(seg, "r+b") as fh:
            fh.write(bytes(data))
        with pytest.raises(CorruptSegmentError):
            store.get("k")
        store.close()


class TestCompaction:
    def _store(self, tmp_path, **kw):
        kw.setdefault("fsync", "never")
        kw.setdefault("auto_compact", False)
        return DurableKVStore(tmp_path / "kv", **kw)

    def test_compact_reclaims_dead_bytes(self, tmp_path):
        store = self._store(tmp_path, segment_max_bytes=512)
        for round_ in range(10):
            for i in range(20):
                store.put(f"k{i}", f"round-{round_}" * 4)
        before = store.stats()
        report = store.compact()
        after = store.stats()
        assert report.segments_merged > 1
        assert report.live_records == 20
        assert report.bytes_reclaimed > 0
        assert after["total_bytes"] < before["total_bytes"]
        assert after["dead_bytes"] == 0
        for i in range(20):
            assert store.get(f"k{i}") == "round-9" * 4
        store.close()

    def test_compact_preserves_versions_and_survives_reopen(self, tmp_path):
        store = self._store(tmp_path)
        for _ in range(3):
            store.put("k", "v")
        store.compact()
        assert store.version("k") == 3
        store.close()
        with DurableKVStore(tmp_path / "kv", fsync="never") as reopened:
            assert reopened.version("k") == 3
            assert reopened.get("k") == "v"

    def test_tombstones_survive_compaction(self, tmp_path):
        store = self._store(tmp_path)
        store.put("dead", "x")
        store.delete("dead")
        store.put("live", "y")
        report = store.compact()
        assert report.tombstones_kept == 1
        store.close()
        with DurableKVStore(tmp_path / "kv", fsync="never") as reopened:
            assert reopened.get("dead") is None
            assert reopened.get("live") == "y"

    def test_partial_compaction_discarded_on_open(self, tmp_path):
        store = self._store(tmp_path)
        store.put("k", "v")
        store.close()
        # a crashed compaction leaves a tmp file with arbitrary content
        stray = tmp_path / "kv" / "compact-tmp-000000000099.log"
        stray.write_bytes(b"half-written garbage")

        registry = MetricsRegistry()
        with DurableKVStore(
            tmp_path / "kv", fsync="never", registry=registry
        ) as reopened:
            assert reopened.get("k") == "v"
        assert not stray.exists()
        assert (
            metric(registry, "durable_kv_partial_compactions_discarded_total")
            == 1.0
        )

    def test_stale_source_segment_cannot_resurrect_deletes(self, tmp_path):
        """Crash between compaction rename and source unlink: the stale
        source segment holds the deleted key's old record, but the
        compacted (higher-id) segment holds its tombstone — scan order
        keeps the key dead."""
        store = self._store(tmp_path)
        store.put("zombie", "braaains")
        store.delete("zombie")
        store.put("live", 1)
        store.seal_active()
        source = sorted((tmp_path / "kv").glob("seg-*.log"))[0]
        stale_copy = source.read_bytes()
        store.compact()
        # resurrect the pre-compaction segment file, as a crash would
        source.write_bytes(stale_copy)
        store.close()
        with DurableKVStore(tmp_path / "kv", fsync="never") as reopened:
            assert reopened.get("zombie") is None
            assert reopened.get("live") == 1

    def test_auto_compact_triggers_on_rotation(self, tmp_path):
        registry = MetricsRegistry()
        store = DurableKVStore(
            tmp_path / "kv",
            fsync="never",
            segment_max_bytes=256,
            compact_min_bytes=512,
            compact_min_dead_ratio=0.5,
            registry=registry,
        )
        for _ in range(100):
            store.put("hot", "x" * 40)  # one key rewritten: ~all bytes dead
        assert metric(registry, "durable_kv_compactions_total") >= 1.0
        assert store.get("hot") == "x" * 40
        store.close()


class TestSegmentHandshake:
    def test_seal_then_restore_to_segments(self, tmp_path):
        store = DurableKVStore(
            tmp_path / "kv", fsync="never", segment_max_bytes=256,
            auto_compact=False,
        )
        for i in range(20):
            store.put(f"k{i}", "x" * 30)
        store.seal_active()
        sealed = store.sealed_segments()
        assert sealed and all(size > 0 for _, size in sealed)

        for i in range(20, 40):
            store.put(f"k{i}", "y" * 30)
        store.put("k0", "rewritten-after-seal")

        live = store.restore_to_segments([name for name, _ in sealed])
        assert live == 20
        assert store.get("k0") == "x" * 30
        assert store.get("k25") is None
        store.close()

    def test_restore_to_missing_segment_raises(self, tmp_path):
        store = DurableKVStore(tmp_path / "kv", fsync="never")
        store.put("k", "v")
        store.seal_active()
        with pytest.raises(DurableStoreError):
            store.restore_to_segments(["seg-000000009999.log"])
        # untouched on failure
        assert store.get("k") == "v"
        store.close()

    def test_restore_rejects_non_segment_names(self, tmp_path):
        store = DurableKVStore(tmp_path / "kv", fsync="never")
        with pytest.raises(DurableStoreError):
            store.restore_to_segments(["../../etc/passwd"])
        store.close()


class TestFsyncPolicies:
    def test_always_fsyncs_every_put(self, tmp_path):
        registry = MetricsRegistry()
        store = DurableKVStore(
            tmp_path / "kv", fsync="always", registry=registry
        )
        for i in range(5):
            store.put(f"k{i}", i)
        assert metric(registry, "durable_kv_fsyncs_total") == 5.0
        store.close()

    def test_mput_is_one_group_commit(self, tmp_path):
        registry = MetricsRegistry()
        store = DurableKVStore(
            tmp_path / "kv", fsync="always", registry=registry
        )
        store.mput([(f"k{i}", i) for i in range(50)])
        assert metric(registry, "durable_kv_fsyncs_total") == 1.0
        store.close()

    def test_interval_policy_batches_fsyncs(self, tmp_path):
        clock = FakeClock()
        registry = MetricsRegistry()
        store = DurableKVStore(
            tmp_path / "kv",
            fsync="interval",
            fsync_interval_s=1.0,
            clock=clock,
            registry=registry,
        )
        for i in range(10):
            store.put(f"k{i}", i)
        assert metric(registry, "durable_kv_fsyncs_total") == 0.0
        clock.advance(1.5)
        store.put("late", 1)
        assert metric(registry, "durable_kv_fsyncs_total") == 1.0
        store.close()

    def test_never_policy_still_durable_after_close(self, tmp_path):
        with DurableKVStore(tmp_path / "kv", fsync="never") as store:
            store.put("k", "v")
        with DurableKVStore(tmp_path / "kv", fsync="never") as reopened:
            assert reopened.get("k") == "v"


class TestTierHelpers:
    def test_unwrap_durable_through_cache(self, tmp_path):
        durable = DurableKVStore(tmp_path / "kv", fsync="never")
        tier = ReadThroughCache(durable, capacity=8)
        assert unwrap_durable(tier) is durable
        assert unwrap_durable(durable) is durable
        assert unwrap_durable(InMemoryKVStore()) is None
        durable.close()

    def test_drop_caches_forces_reread(self, tmp_path):
        durable = DurableKVStore(tmp_path / "kv", fsync="never")
        tier = ReadThroughCache(durable, capacity=8)
        tier.put("k", "cached")
        durable.put("k", "changed-underneath")
        assert tier.get("k") == "cached"  # stale by design
        drop_caches(tier)
        assert tier.get("k") == "changed-underneath"
        durable.close()

    def test_cache_over_durable_serves_hot_set_from_memory(self, tmp_path):
        registry = MetricsRegistry()
        durable = DurableKVStore(
            tmp_path / "kv", fsync="never", registry=registry
        )
        tier = ReadThroughCache(durable, capacity=64)
        tier.put("k", "v")
        disk_reads = metric(registry, "durable_kv_reads_total")
        for _ in range(100):
            assert tier.get("k") == "v"
        assert metric(registry, "durable_kv_reads_total") == disk_reads
        assert len(tier) == 1  # KVStore contract: backing-store size
        durable.close()

    def test_snapshot_restore_roundtrip_through_tier(self, tmp_path):
        durable = DurableKVStore(tmp_path / "kv", fsync="never")
        tier = ReadThroughCache(durable, capacity=8)
        tier.put("a", 1)
        tier.put("a", 2)
        tier.put("b", [3])
        entries = tier.snapshot_entries()

        other = InMemoryKVStore()
        other.restore_entries(entries)
        assert other.get("a") == 2
        assert other.version("a") == 2
        assert other.get("b") == [3]
        durable.close()
