"""Tests for the single-shard in-memory KV store."""

import pytest

from repro.clock import VirtualClock
from repro.errors import CASConflict, KeyNotFound
from repro.kvstore import InMemoryKVStore


@pytest.fixture
def store():
    return InMemoryKVStore()


class TestBasicOps:
    def test_get_missing_returns_default(self, store):
        assert store.get("nope") is None
        assert store.get("nope", 42) == 42

    def test_put_then_get(self, store):
        store.put("k", "v")
        assert store.get("k") == "v"

    def test_get_strict_raises_on_missing(self, store):
        with pytest.raises(KeyNotFound):
            store.get_strict("missing")

    def test_get_strict_returns_value(self, store):
        store.put("k", [1, 2])
        assert store.get_strict("k") == [1, 2]

    def test_overwrite(self, store):
        store.put("k", 1)
        store.put("k", 2)
        assert store.get("k") == 2

    def test_delete(self, store):
        store.put("k", 1)
        assert store.delete("k") is True
        assert store.get("k") is None
        assert store.delete("k") is False

    def test_contains(self, store):
        assert "k" not in store
        store.put("k", 0)
        assert "k" in store

    def test_len(self, store):
        assert len(store) == 0
        store.put("a", 1)
        store.put("b", 2)
        assert len(store) == 2

    def test_falsy_values_are_stored(self, store):
        """0, None, empty containers are legitimate values."""
        store.put("zero", 0)
        store.put("none", None)
        assert "zero" in store
        assert store.get_strict("zero") == 0
        assert "none" in store
        assert store.get("none", "sentinel") is None

    def test_tuple_keys(self, store):
        store.put(("user", "u1"), "x")
        store.put(("video", "u1"), "y")
        assert store.get(("user", "u1")) == "x"
        assert store.get(("video", "u1")) == "y"

    def test_keys_snapshot(self, store):
        store.put("a", 1)
        store.put("b", 2)
        keys = store.keys()
        store.put("c", 3)  # mutation after snapshot must not break iteration
        assert set(keys) == {"a", "b"}

    def test_items(self, store):
        store.put("a", 1)
        store.put("b", 2)
        assert dict(store.items()) == {"a": 1, "b": 2}

    def test_clear(self, store):
        store.put("a", 1)
        store.clear()
        assert len(store) == 0


class TestVersioning:
    def test_version_zero_when_absent(self, store):
        assert store.version("k") == 0

    def test_version_increments_on_put(self, store):
        assert store.put("k", 1) == 1
        assert store.put("k", 2) == 2
        assert store.version("k") == 2

    def test_delete_resets_version(self, store):
        store.put("k", 1)
        store.delete("k")
        assert store.version("k") == 0
        assert store.put("k", 1) == 1

    def test_cas_succeeds_on_matching_version(self, store):
        version = store.put("k", "old")
        new_version = store.compare_and_set("k", "new", version)
        assert new_version == version + 1
        assert store.get("k") == "new"

    def test_cas_version_zero_means_create(self, store):
        store.compare_and_set("fresh", "v", 0)
        assert store.get("fresh") == "v"

    def test_cas_conflict(self, store):
        store.put("k", "a")
        store.put("k", "b")
        with pytest.raises(CASConflict) as excinfo:
            store.compare_and_set("k", "c", 1)
        assert excinfo.value.expected == 1
        assert excinfo.value.actual == 2
        assert store.get("k") == "b"  # unchanged

    def test_cas_conflict_on_missing_key(self, store):
        with pytest.raises(CASConflict):
            store.compare_and_set("missing", "v", 3)


class TestUpdate:
    def test_update_applies_function(self, store):
        store.put("n", 10)
        result = store.update("n", lambda x: x + 1)
        assert result == 11
        assert store.get("n") == 11

    def test_update_uses_default_when_missing(self, store):
        result = store.update("counter", lambda x: x + 1, default=0)
        assert result == 1

    def test_update_bumps_version(self, store):
        store.put("k", 1)
        store.update("k", lambda x: x)
        assert store.version("k") == 2

    def test_setdefault_inserts_once(self, store):
        calls = []

        def factory():
            calls.append(1)
            return "init"

        assert store.setdefault("k", factory) == "init"
        assert store.setdefault("k", factory) == "init"
        assert len(calls) == 1


class TestTTL:
    def test_entry_expires(self):
        clock = VirtualClock(0.0)
        store = InMemoryKVStore(clock=clock)
        store.put("k", "v", ttl=10.0)
        assert store.get("k") == "v"
        clock.advance(10.0)
        assert store.get("k") is None
        assert "k" not in store

    def test_nonexpired_survives(self):
        clock = VirtualClock(0.0)
        store = InMemoryKVStore(clock=clock)
        store.put("k", "v", ttl=10.0)
        clock.advance(9.999)
        assert store.get("k") == "v"

    def test_overwrite_without_ttl_clears_expiry(self):
        clock = VirtualClock(0.0)
        store = InMemoryKVStore(clock=clock)
        store.put("k", "v1", ttl=5.0)
        store.put("k", "v2")
        clock.advance(100.0)
        assert store.get("k") == "v2"

    def test_sweep_purges_expired(self):
        clock = VirtualClock(0.0)
        store = InMemoryKVStore(clock=clock)
        store.put("a", 1, ttl=1.0)
        store.put("b", 2, ttl=100.0)
        clock.advance(2.0)
        assert store.sweep() == 1
        assert set(store.keys()) == {"b"}

    def test_keys_excludes_expired(self):
        clock = VirtualClock(0.0)
        store = InMemoryKVStore(clock=clock)
        store.put("a", 1, ttl=1.0)
        clock.advance(5.0)
        assert list(store.keys()) == []

    def test_nonpositive_ttl_rejected(self, ):
        store = InMemoryKVStore()
        with pytest.raises(ValueError):
            store.put("k", "v", ttl=0.0)

    def test_version_restarts_after_expiry(self):
        clock = VirtualClock(0.0)
        store = InMemoryKVStore(clock=clock)
        store.put("k", "v", ttl=1.0)
        clock.advance(2.0)
        assert store.put("k", "v2") == 1
