"""Tests for demographic training (§5.2.2) — per-group models."""

import pytest

from repro.clock import VirtualClock
from repro.core import GroupedRecommender
from repro.data import GLOBAL_GROUP, ActionType, User, UserAction, Video

VIDEOS = {f"v{i}": Video(f"v{i}", "t", duration=100.0) for i in range(6)}
USERS = {
    "m1": User("m1", gender="m", age_band="young"),
    "m2": User("m2", gender="m", age_band="young"),
    "f1": User("f1", gender="f", age_band="adult"),
    "anon": User("anon", registered=False),
}


@pytest.fixture
def grouped():
    return GroupedRecommender(VIDEOS, USERS, clock=VirtualClock(0.0))


def _click(user, video, ts=0.0):
    return UserAction(ts, user, video, ActionType.CLICK)


class TestRouting:
    def test_actions_routed_to_group_model(self, grouped):
        grouped.observe(_click("m1", "v0"))
        grouped.observe(_click("f1", "v1"))
        male = grouped.recommender_for_group("m|young")
        female = grouped.recommender_for_group("f|adult")
        assert male.model.has_user("m1")
        assert not male.model.has_user("f1")
        assert female.model.has_user("f1")

    def test_unknown_user_routed_to_global(self, grouped):
        grouped.observe(_click("stranger", "v0"))
        assert GLOBAL_GROUP in grouped.groups()
        assert grouped.recommender_for_group(GLOBAL_GROUP).model.has_user(
            "stranger"
        )

    def test_unregistered_user_routed_to_global(self, grouped):
        grouped.observe(_click("anon", "v0"))
        assert grouped.group_for("anon") == GLOBAL_GROUP

    def test_groups_created_lazily(self, grouped):
        assert grouped.groups() == []
        grouped.observe(_click("m1", "v0"))
        assert grouped.groups() == ["m|young"]

    def test_same_group_same_recommender(self, grouped):
        assert grouped.recommender_for_user("m1") is grouped.recommender_for_user("m2")


class TestPerGroupVectors:
    def test_video_vector_per_group(self, grouped):
        """§5.2.2: 'there will be a video vector y_i for each demographic
        group' — the same video learns separately per group."""
        grouped.observe(_click("m1", "v0"))
        grouped.observe(_click("f1", "v0"))
        male_vec = grouped.recommender_for_group("m|young").model.video_vector("v0")
        female_vec = grouped.recommender_for_group("f|adult").model.video_vector("v0")
        assert male_vec is not None and female_vec is not None
        # trained on different users => diverged
        grouped.observe(_click("m1", "v0", ts=1.0))
        male_vec2 = grouped.recommender_for_group("m|young").model.video_vector("v0")
        assert not (male_vec2 == female_vec).all()

    def test_similarity_computed_within_group(self, grouped):
        grouped.observe(_click("m1", "v0", ts=0.0))
        grouped.observe(_click("m1", "v1", ts=1.0))
        grouped.observe(_click("f1", "v2", ts=0.0))
        grouped.observe(_click("f1", "v3", ts=1.0))
        male_table = grouped.recommender_for_group("m|young").table
        assert "v0" in dict(male_table.neighbors("v1", now=1.0))
        assert "v2" not in dict(male_table.neighbors("v1", now=1.0))


class TestServing:
    def test_recommend_uses_group_model(self, grouped):
        for ts, video in enumerate(["v0", "v1", "v2"]):
            grouped.observe(_click("m1", video, float(ts)))
            grouped.observe(_click("m2", video, float(ts) + 0.5))
        recs = grouped.recommend("m1", n=3, now=5.0)
        assert isinstance(recs, list)

    def test_observe_stream(self, grouped):
        count = grouped.observe_stream(
            [_click("m1", "v0"), _click("f1", "v1")]
        )
        assert count == 2

    def test_recommend_ids_matches_recommend(self, grouped):
        for ts, video in enumerate(["v0", "v1", "v2"]):
            grouped.observe(_click("m1", video, float(ts)))
            grouped.observe(_click("m2", video, float(ts) + 0.5))
        full = grouped.recommend("m1", n=5, now=10.0)
        ids = grouped.recommend_ids("m1", n=5, now=10.0)
        assert ids == [r.video_id for r in full]
