"""Unit tests for the contiguous factor arena."""

import pickle
import threading

import numpy as np
import pytest

from repro.core.arena import FactorArena


def _vec(f, fill):
    return np.full(f, float(fill))


class TestBasics:
    def test_empty(self):
        arena = FactorArena(4)
        assert len(arena) == 0
        assert arena.vector("u") is None
        assert arena.bias("u") == 0.0
        assert "u" not in arena

    def test_put_and_read_back(self):
        arena = FactorArena(4)
        arena.put("u", _vec(4, 1.5), 0.25)
        assert len(arena) == 1
        assert "u" in arena
        np.testing.assert_array_equal(arena.vector("u"), _vec(4, 1.5))
        assert arena.bias("u") == 0.25

    def test_vector_returns_a_copy(self):
        arena = FactorArena(4)
        arena.put("u", _vec(4, 1.0), 0.0)
        held = arena.vector("u")
        arena.put("u", _vec(4, 9.0), 0.0)
        np.testing.assert_array_equal(held, _vec(4, 1.0))

    def test_dimension_mismatch_rejected(self):
        arena = FactorArena(4)
        with pytest.raises(ValueError):
            arena.put("u", _vec(3, 1.0), 0.0)

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            FactorArena(0)
        with pytest.raises(ValueError):
            FactorArena(4, initial_capacity=0)

    def test_bias_without_vector(self):
        arena = FactorArena(4)
        arena.set_bias("u", 0.5)
        assert arena.bias("u") == 0.5
        assert "u" not in arena  # membership follows the vector
        assert len(arena) == 0


class TestGrowth:
    def test_grows_past_initial_capacity(self):
        arena = FactorArena(3, initial_capacity=2)
        for i in range(50):
            arena.put(f"e{i}", _vec(3, i), float(i))
        assert len(arena) == 50
        for i in range(50):
            np.testing.assert_array_equal(arena.vector(f"e{i}"), _vec(3, i))
            assert arena.bias(f"e{i}") == float(i)

    def test_ids_in_first_touch_order(self):
        arena = FactorArena(2, initial_capacity=1)
        for name in ("c", "a", "b"):
            arena.put(name, _vec(2, 0.0), 0.0)
        assert arena.ids() == ["c", "a", "b"]


class TestBatchReads:
    def test_vectors_matrix_gathers_with_zero_rows(self):
        arena = FactorArena(2)
        arena.put("a", np.array([1.0, 2.0]), 0.0)
        arena.put("b", np.array([3.0, 4.0]), 0.0)
        matrix = arena.vectors_matrix(["b", "missing", "a"])
        np.testing.assert_array_equal(
            matrix, np.array([[3.0, 4.0], [0.0, 0.0], [1.0, 2.0]])
        )

    def test_matrix_is_a_copy(self):
        arena = FactorArena(2)
        arena.put("a", np.array([1.0, 2.0]), 0.0)
        matrix = arena.vectors_matrix(["a"])
        matrix[0, 0] = 99.0
        np.testing.assert_array_equal(arena.vector("a"), [1.0, 2.0])

    def test_biases_array(self):
        arena = FactorArena(2)
        arena.put("a", _vec(2, 0.0), 0.5)
        arena.put("b", _vec(2, 0.0), -0.25)
        np.testing.assert_array_equal(
            arena.biases_array(["b", "nope", "a"]), [-0.25, 0.0, 0.5]
        )

    def test_vectors_many_mixes_hits_and_misses(self):
        arena = FactorArena(2)
        arena.put("a", np.array([1.0, 1.0]), 0.0)
        out = arena.vectors_many(["missing", "a"])
        assert out[0] is None
        np.testing.assert_array_equal(out[1], [1.0, 1.0])


class TestSetdefaultDelete:
    def test_setdefault_installs_once(self):
        arena = FactorArena(2)
        calls = []

        def factory():
            calls.append(1)
            return np.array([5.0, 5.0])

        first = arena.setdefault_vector("u", factory)
        second = arena.setdefault_vector("u", factory)
        np.testing.assert_array_equal(first, second)
        assert len(calls) == 1

    def test_delete_forgets_vector(self):
        arena = FactorArena(2)
        arena.put("u", _vec(2, 1.0), 0.5)
        assert arena.delete("u") is True
        assert arena.vector("u") is None
        assert len(arena) == 0
        assert arena.delete("u") is False


class TestPickle:
    def test_roundtrip(self):
        arena = FactorArena(3, initial_capacity=2)
        for i in range(10):
            arena.put(f"e{i}", _vec(3, i), float(i) / 2)
        arena.set_bias("bias-only", 0.75)
        clone = pickle.loads(pickle.dumps(arena))
        assert len(clone) == 10
        assert clone.ids() == arena.ids()
        for i in range(10):
            np.testing.assert_array_equal(clone.vector(f"e{i}"), _vec(3, i))
            assert clone.bias(f"e{i}") == float(i) / 2
        assert clone.bias("bias-only") == 0.75
        assert "bias-only" not in clone
        # The clone is independently mutable (fresh lock, fresh arrays).
        clone.put("new", _vec(3, 42.0), 0.0)
        assert arena.vector("new") is None


class TestThreadSafety:
    def test_concurrent_writers_land_all_rows(self):
        arena = FactorArena(4)
        errors = []

        def writer(offset):
            try:
                for i in range(200):
                    arena.put(f"w{offset}-{i}", _vec(4, i), float(i))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(t,)) for t in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(arena) == 800
