"""Simtable eviction under a flash-crowd scenario (ROADMAP item 1).

A video going viral mid-stream floods the similar-video tables with fresh
high-engagement pairs.  Two properties must hold (§4.2, Eq. 11):

* the viral video enters the similarity list of every video it co-occurs
  with, within the time-damping window — recency beats incumbency;
* a full table evicts exactly its *weakest damped* entry (the min of the
  time-invariant eviction key), never an arbitrary or strongest one.
"""

import pytest

from repro.clock import SECONDS_PER_DAY, VirtualClock
from repro.config import MFConfig, SimilarityConfig
from repro.core import MFModel, SimilarVideoTable, generate_pairs
from repro.core.simtable import _eviction_key
from repro.data import SyntheticWorld, WorldConfig
from repro.data.stream import ENGAGEMENT_ACTIONS
from repro.eval.scenarios import FlashCrowd, Scenario

VIRAL_DAY = 2
XI = 2.0 * SECONDS_PER_DAY  # the damping window the assertions use


@pytest.fixture(scope="module")
def flash_world():
    scenario = Scenario(
        "flash_crowd",
        (FlashCrowd(day=VIRAL_DAY, duration_days=2, boost=80.0),),
    )
    world = SyntheticWorld(
        WorldConfig(n_users=50, n_videos=40, n_types=4, days=5, seed=11),
        scenario=scenario,
    )
    return world, world.generate_actions()


def _replay_pairs(world, actions, table):
    """Feed engagement co-occurrence pairs through the table, tracking the
    full co-occurrence timeline of every video."""
    recent: dict[str, list[str]] = {}
    timeline: dict[str, list[tuple[float, str]]] = {}
    for action in actions:
        if action.action not in ENGAGEMENT_ACTIONS:
            continue
        history = recent.setdefault(action.user_id, [])
        for a, b in generate_pairs(action.video_id, history, limit=5):
            table.offer_pair(a, b, now=action.timestamp)
            timeline.setdefault(a, []).append((action.timestamp, b))
            timeline.setdefault(b, []).append((action.timestamp, a))
        if action.video_id in history:
            history.remove(action.video_id)
        history.insert(0, action.video_id)
        del history[10:]
    return timeline


class TestViralVideoEntersLists:
    TABLE_SIZE = 8

    def test_viral_in_every_relevant_list_within_window(self, flash_world):
        world, actions = flash_world
        # beta=1 pins raw relevance to the type-similarity term (Eq. 10):
        # same-type pairs all score exactly 1, cross-type pairs 0 (and are
        # filtered from neighbour lists), so the damped ordering — and
        # therefore eviction — is decided by *freshness* (Eq. 11), which
        # is exactly what this test pins down.
        model = MFModel(MFConfig(f=4, init_scale=1e-4, seed=3))
        for vid in world.videos:
            model.ensure_video(vid)
        table = SimilarVideoTable(
            world.videos,
            model,
            config=SimilarityConfig(
                table_size=self.TABLE_SIZE, xi=XI, beta=1.0
            ),
            clock=VirtualClock(0.0),
        )
        timeline = _replay_pairs(world, actions, table)

        query_at = (VIRAL_DAY + 2) * SECONDS_PER_DAY  # end of the event
        viral_kind = world.videos["viral_0"].kind
        events = timeline.get("viral_0", [])
        assert len(events) >= 20, "the flash crowd produced no co-engagement"

        last_viral: dict[str, float] = {}
        for t, partner in events:
            if t <= query_at:
                last_viral[partner] = max(last_viral.get(partner, 0.0), t)

        # Relevant lists: same-type partners whose last viral co-occurrence
        # is inside the damping window, and who have NOT since co-occurred
        # with a full table's worth of fresher distinct same-type videos
        # (those may legitimately displace the viral entry — that is the
        # eviction policy working, not failing).  With beta=1 cross-type
        # pairs score 0 and never occupy a ranked slot.
        relevant = []
        for partner, t_viral in last_viral.items():
            if world.videos[partner].kind != viral_kind:
                continue
            if query_at - t_viral > XI:
                continue
            fresher = {
                other
                for t, other in timeline.get(partner, [])
                if t_viral < t <= query_at
                and other != "viral_0"
                and world.videos[other].kind == viral_kind
            }
            if len(fresher) < self.TABLE_SIZE:
                relevant.append(partner)
        assert len(relevant) >= 3, "flash crowd too weak to test anything"

        for vid in relevant:
            neighbor_ids = [
                other for other, _ in table.neighbors(vid, now=query_at)
            ]
            assert "viral_0" in neighbor_ids, (
                f"viral_0 co-occurred with {vid} within xi but is missing "
                f"from its similarity list {neighbor_ids}"
            )

    def test_viral_absent_before_event(self, flash_world):
        world, actions = flash_world
        before = VIRAL_DAY * SECONDS_PER_DAY
        assert all(
            a.video_id != "viral_0" for a in actions if a.timestamp < before
        )


class TestEvictionIsHeapWeakest:
    def _table(self, n_videos=12, table_size=4):
        from repro.data.schema import Video

        videos = {
            f"v{i}": Video(f"v{i}", "a", duration=100.0)
            for i in range(n_videos)
        }
        model = MFModel(MFConfig(f=4, init_scale=0.5, seed=9))
        for vid in videos:
            model.ensure_video(vid)
        table = SimilarVideoTable(
            videos,
            model,
            config=SimilarityConfig(table_size=table_size, xi=XI),
            clock=VirtualClock(0.0),
        )
        return table

    def test_full_table_evicts_weakest_damped_entry(self):
        table = self._table()
        xi = table.config.xi
        # Fill v0's list to capacity with distinct raw scores and ages.
        for i, (raw, t) in enumerate(
            [(0.9, 0.0), (0.5, 1000.0), (0.8, 2000.0), (0.4, 3000.0)]
        ):
            table.insert_scored("v0", f"v{i + 1}", raw, t)
        entries = table.raw_entries("v0")
        assert len(entries) == 4
        weakest = min(
            entries, key=lambda o: _eviction_key(*entries[o], xi=xi)
        )

        table.insert_scored("v0", "v9", 0.95, 4000.0)
        after = table.raw_entries("v0")
        assert len(after) == 4
        assert weakest not in after
        assert "v9" in after
        # Everyone except the weakest survived.
        assert set(entries) - {weakest} < set(after)

    def test_sequential_evictions_pop_in_damped_order(self):
        table = self._table(table_size=3)
        xi = table.config.xi
        seeds = [(0.9, 0.0), (0.2, 500.0), (0.6, 1500.0)]
        for i, (raw, t) in enumerate(seeds):
            table.insert_scored("v0", f"v{i + 1}", raw, t)

        # Repeatedly inserting ever-stronger entries must evict survivors
        # in exactly ascending damped order.
        expected_order = sorted(
            table.raw_entries("v0").items(),
            key=lambda item: _eviction_key(*item[1], xi=xi),
        )
        evicted = []
        present = set(table.raw_entries("v0"))
        for j, t in enumerate([2000.0, 3000.0, 4000.0]):
            table.insert_scored("v0", f"v{j + 6}", 5.0 + j, t)
            now_present = set(table.raw_entries("v0"))
            gone = present - now_present
            assert len(gone) == 1
            evicted.append(gone.pop())
            present = now_present
        assert evicted == [vid for vid, _ in expected_order]

    def test_stale_strong_raw_loses_to_fresh_moderate(self):
        """A high raw score from long ago must be evicted before a fresh
        moderate one — damping, not raw magnitude, decides survival."""
        table = self._table(table_size=2)
        table.insert_scored("v0", "v1", 10.0, 0.0)  # strong but ancient
        table.insert_scored(
            "v0", "v2", 0.5, 10 * SECONDS_PER_DAY
        )  # moderate, fresh: damped 10*2^-5 = 0.3125 < 0.5
        table.insert_scored("v0", "v3", 0.6, 10 * SECONDS_PER_DAY)
        after = table.raw_entries("v0")
        assert "v1" not in after  # the stale titan fell first
        assert set(after) == {"v2", "v3"}
