"""Tests for MF model save/load."""

import numpy as np
import pytest

from repro.config import MFConfig
from repro.core import MFModel
from repro.errors import ModelError


@pytest.fixture
def trained(tmp_path):
    model = MFModel(MFConfig(f=6, seed=3))
    model.observe_rating(0.0)
    model.observe_rating(1.0)
    for i in range(10):
        model.sgd_step(f"u{i % 3}", f"v{i % 4}", 1.0, eta=0.05)
    path = tmp_path / "model.npz"
    model.save(str(path))
    return model, path


class TestSaveLoad:
    def test_round_trip_restores_everything(self, trained):
        model, path = trained
        restored = MFModel(MFConfig(f=6, seed=99))
        restored.load(str(path))
        assert restored.n_users == model.n_users
        assert restored.n_videos == model.n_videos
        assert restored.mu == pytest.approx(model.mu)
        for user in ("u0", "u1", "u2"):
            assert np.allclose(
                restored.user_vector(user), model.user_vector(user)
            )
            assert restored.user_bias(user) == pytest.approx(
                model.user_bias(user)
            )
        for video in ("v0", "v1", "v2", "v3"):
            assert np.allclose(
                restored.video_vector(video), model.video_vector(video)
            )

    def test_predictions_identical_after_reload(self, trained):
        model, path = trained
        restored = MFModel(MFConfig(f=6))
        restored.load(str(path))
        for user in ("u0", "u2"):
            for video in ("v0", "v3"):
                assert restored.predict(user, video) == pytest.approx(
                    model.predict(user, video)
                )

    def test_dimension_mismatch_rejected(self, trained):
        _, path = trained
        wrong = MFModel(MFConfig(f=8))
        with pytest.raises(ModelError, match="dimensionality"):
            wrong.load(str(path))

    def test_empty_model_round_trip(self, tmp_path):
        model = MFModel(MFConfig(f=4))
        path = tmp_path / "empty.npz"
        model.save(str(path))
        restored = MFModel(MFConfig(f=4))
        restored.load(str(path))
        assert restored.n_users == 0
        assert restored.n_videos == 0
        assert restored.mu == 0.0

    def test_training_continues_after_reload(self, trained):
        """Online learning resumes seamlessly from a checkpoint."""
        model, path = trained
        restored = MFModel(MFConfig(f=6))
        restored.load(str(path))
        before = restored.predict("u0", "v0")
        restored.sgd_step("u0", "v0", 1.0, eta=0.05)
        after = restored.predict("u0", "v0")
        assert after != before
