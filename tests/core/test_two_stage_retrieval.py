"""Equivalence suite for two-stage (ANN shortlist -> exact re-rank)
retrieval: saturated-index equality with exhaustive re-ranking, demographic
post-filter semantics, batched seed fetches, and router integration."""

import numpy as np
import pytest

from repro.clock import VirtualClock
from repro.config import MFConfig, ReproConfig, RetrievalConfig
from repro.core import DemographicRecommender, RealtimeRecommender
from repro.data import ActionType, UserAction
from repro.kvstore import InMemoryKVStore
from repro.obs import Observability
from repro.serving import RecRequest, RequestRouter


def _config(mode, **knobs):
    # Saturating shortlist: with min_shortlist far above the catalog the
    # ANN stage returns every indexed video, so stage 2 must reproduce the
    # exhaustive re-rank exactly — any divergence is a retrieval bug.
    return ReproConfig(
        retrieval=RetrievalConfig(
            mode=mode,
            min_shortlist=100_000,
            shortlist_cap=200_000,
            **knobs,
        )
    )


def _trained(small_world, small_split, mode, **kwargs):
    rec = RealtimeRecommender(
        small_world.videos,
        users=small_world.users,
        config=_config(mode),
        clock=VirtualClock(0.0),
        **kwargs,
    )
    rec.observe_stream(small_split.train)
    rec.clock.set(max(a.timestamp for a in small_split.train) + 1)
    if rec.index is not None:
        rec.rebuild_index()
    return rec


def _warm_users(rec, limit=5):
    users = [
        u for u in sorted(rec.users) if rec.model.user_vector(u) is not None
    ]
    assert users, "expected trained users"
    return users[:limit]


class TestSaturatedEquivalence:
    def test_ann_matches_exhaustive_rerank(self, small_world, small_split):
        rec = _trained(
            small_world, small_split, "ann", enable_demographic=False
        )
        catalog = rec.model.known_videos()
        for user in _warm_users(rec):
            got = rec.recommend_ids(user, current_video="v5", n=10)
            pool = [vid for vid in catalog if vid != "v5"]
            scores = rec.model.predict_many(user, pool)
            order = sorted(
                range(len(pool)), key=lambda i: (-scores[i], pool[i])
            )
            expected = [pool[i] for i in order[:10]]
            assert got == expected

    def test_hybrid_matches_ann_when_saturated(
        self, small_world, small_split
    ):
        ann = _trained(
            small_world, small_split, "ann", enable_demographic=False
        )
        hybrid = _trained(
            small_world, small_split, "hybrid", enable_demographic=False
        )
        for user in _warm_users(ann):
            assert ann.recommend_ids(
                user, current_video="v3", n=10
            ) == hybrid.recommend_ids(user, current_video="v3", n=10)

    def test_ann_mode_with_demographic_merge(self, small_world, small_split):
        """The merged output only draws demographic picks from the
        post-filter-equivalent list (blocked = watched + seeds)."""
        rec = _trained(small_world, small_split, "ann")
        for action in small_split.train:
            rec.observe_demographic(action)
        for user in _warm_users(rec):
            got = rec.recommend_ids(user, current_video="v2", n=10)
            assert len(got) == len(set(got))
            assert "v2" not in got


class TestDemographicPostFilterPin:
    def test_recommend_filtered_is_exactly_postfiltered_recommend(
        self, small_world, small_actions
    ):
        demo = DemographicRecommender(
            small_world.users, clock=VirtualClock(0.0)
        )
        for action in small_actions[:400]:
            demo.record(action)
        now = small_actions[399].timestamp + 1
        for user in list(small_world.users)[:6]:
            full = demo.recommend(user, 10, now=now)
            blocked = frozenset(full[::2])  # block every other pick
            assert demo.recommend_filtered(
                user, 10, blocked=blocked, now=now
            ) == [vid for vid in full if vid not in blocked]

    def test_blocked_videos_consume_budget_without_topup(
        self, small_world, small_actions
    ):
        demo = DemographicRecommender(
            small_world.users, clock=VirtualClock(0.0)
        )
        for action in small_actions[:400]:
            demo.record(action)
        now = small_actions[399].timestamp + 1
        user = next(iter(small_world.users))
        full = demo.recommend(user, 5, now=now)
        if not full:
            pytest.skip("group has no hot videos")
        filtered = demo.recommend_filtered(
            user, 5, blocked=frozenset({full[0]}), now=now
        )
        # One slot burned, never topped up past k-1.
        assert filtered == full[1:]


class TestBatchedSeedFetches:
    def _mget_stats(self, obs):
        ops = obs.registry.get("kvstore_ops_total")
        keys = obs.registry.get("kvstore_batch_keys_total")
        return (
            ops.labels(op="mget").value,
            keys.labels(op="mget").value,
        )

    def test_duplicate_seeds_are_one_mget(self, small_world, small_split):
        obs = Observability.create()
        rec = RealtimeRecommender(
            small_world.videos,
            users=small_world.users,
            clock=VirtualClock(0.0),
            store=InMemoryKVStore(),
            obs=obs,
            enable_demographic=False,
        )
        rec.observe_stream(small_split.train[:200])
        ops_before, keys_before = self._mget_stats(obs)
        rec.table.neighbors_many(["v1", "v1", "v2"])
        ops_after, keys_after = self._mget_stats(obs)
        assert ops_after - ops_before == 1
        assert keys_after - keys_before == 2  # deduplicated before the batch

    def test_selector_dedups_before_seed_cap(self, small_world, small_split):
        obs = Observability.create()
        rec = RealtimeRecommender(
            small_world.videos,
            users=small_world.users,
            clock=VirtualClock(0.0),
            store=InMemoryKVStore(),
            obs=obs,
            enable_demographic=False,
        )
        rec.observe_stream(small_split.train[:200])
        cap = rec.config.recommend.max_seeds
        # More duplicate seeds than the cap: dedup must happen *before*
        # the cap so distinct seeds are not crowded out, and the table
        # fetch stays a single batched read.
        seeds = ["v1"] * cap + ["v2"]
        ops_before, keys_before = self._mget_stats(obs)
        rec.selector.select(seeds, now=1.0)
        ops_after, keys_after = self._mget_stats(obs)
        assert ops_after - ops_before == 1
        assert keys_after - keys_before == 2

    def test_cold_user_ann_fallback_batches_seed_vectors(
        self, small_world, small_split
    ):
        obs = Observability.create()
        config = ReproConfig(
            # The per-key KV backend, where every vector read is store
            # traffic — the layout the batching contract protects.
            mf=MFConfig(backend="kv"),
            retrieval=RetrievalConfig(
                mode="ann", min_shortlist=100_000, shortlist_cap=200_000
            ),
        )
        rec = RealtimeRecommender(
            small_world.videos,
            users=small_world.users,
            config=config,
            clock=VirtualClock(0.0),
            store=InMemoryKVStore(),
            obs=obs,
            enable_demographic=False,
        )
        rec.observe_stream(small_split.train[:200])
        rec.rebuild_index()
        ops_before, keys_before = self._mget_stats(obs)
        shortlist = rec._ann_shortlist(
            "stranger", ["v1", "v1", "v2"], set(), 10
        )
        ops_after, keys_after = self._mget_stats(obs)
        assert shortlist
        assert ops_after - ops_before == 1  # one batch for all seed vectors
        assert keys_after - keys_before == 2


class TestRouterIntegration:
    def test_handle_many_serves_ann_mode(self, small_world, small_split):
        rec = _trained(small_world, small_split, "ann")
        for action in small_split.train:
            rec.observe_demographic(action)
        router = RequestRouter(rec)
        users = _warm_users(rec, limit=4)
        requests = [RecRequest(user_id=u, n=5) for u in users] + [
            RecRequest(user_id=users[0], current_video="v7", n=5)
        ]
        responses = router.handle_many(requests)
        assert len(responses) == len(requests)
        for response in responses:
            assert response.error is None
            assert response.video_ids
            assert len(response.video_ids) <= 5

    def test_ann_metrics_flow_into_registry(self, small_world, small_split):
        obs = Observability.create()
        rec = RealtimeRecommender(
            small_world.videos,
            users=small_world.users,
            config=_config("ann"),
            clock=VirtualClock(0.0),
            obs=obs,
        )
        rec.observe_stream(small_split.train[:300])
        rec.rebuild_index()
        rec.recommend_ids(_warm_users(rec, limit=1)[0], n=5)
        totals = obs.registry.counter_totals()

        def total(family):
            return sum(
                v for k, v in totals.items() if k.split("{")[0] == family
            )

        assert total("ann_queries_total") >= 1
        assert total("ann_probes_total") >= 1
        assert total("ann_rebuilds_total") >= 1
        assert total("ann_upserts_total") >= 1
