"""Tests for the user-history store."""

import pytest

from repro.core import UserHistoryStore
from repro.data import ActionType, UserAction


def _engagement(user, video, ts):
    return UserAction(ts, user, video, ActionType.CLICK)


class TestRecord:
    def test_engagements_recorded(self):
        history = UserHistoryStore()
        assert history.record(_engagement("u", "v1", 1.0))
        assert history.recent("u") == ["v1"]

    def test_impressions_not_recorded(self):
        history = UserHistoryStore()
        recorded = history.record(
            UserAction(1.0, "u", "v1", ActionType.IMPRESS)
        )
        assert not recorded
        assert history.recent("u") == []

    def test_most_recent_first(self):
        history = UserHistoryStore()
        for i, video in enumerate(["a", "b", "c"]):
            history.record(_engagement("u", video, float(i)))
        assert history.recent("u") == ["c", "b", "a"]

    def test_re_engagement_moves_to_front(self):
        history = UserHistoryStore()
        for i, video in enumerate(["a", "b", "a"]):
            history.record(_engagement("u", video, float(i)))
        assert history.recent("u") == ["a", "b"]

    def test_bounded(self):
        history = UserHistoryStore(max_items=3)
        for i in range(10):
            history.record(_engagement("u", f"v{i}", float(i)))
        assert history.recent("u") == ["v9", "v8", "v7"]

    def test_invalid_max_items(self):
        with pytest.raises(ValueError):
            UserHistoryStore(max_items=0)


class TestQueries:
    def test_recent_with_k(self):
        history = UserHistoryStore()
        for i in range(5):
            history.record(_engagement("u", f"v{i}", float(i)))
        assert history.recent("u", k=2) == ["v4", "v3"]

    def test_watched_set(self):
        history = UserHistoryStore()
        history.record(_engagement("u", "a", 1.0))
        history.record(_engagement("u", "b", 2.0))
        assert history.watched("u") == {"a", "b"}

    def test_unknown_user(self):
        history = UserHistoryStore()
        assert history.recent("ghost") == []
        assert history.watched("ghost") == set()
        assert history.last_active("ghost") is None
        assert "ghost" not in history

    def test_last_active(self):
        history = UserHistoryStore()
        history.record(_engagement("u", "a", 5.0))
        history.record(_engagement("u", "b", 9.0))
        assert history.last_active("u") == 9.0

    def test_len_counts_users(self):
        history = UserHistoryStore()
        history.record(_engagement("u1", "a", 1.0))
        history.record(_engagement("u2", "a", 1.0))
        assert len(history) == 2

    def test_users_isolated(self):
        history = UserHistoryStore()
        history.record(_engagement("u1", "a", 1.0))
        history.record(_engagement("u2", "b", 1.0))
        assert history.recent("u1") == ["a"]
        assert history.recent("u2") == ["b"]
