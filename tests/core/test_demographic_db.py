"""Tests for the demographic (DB) algorithm and filtering (§5.2.1)."""

import pytest

from repro.clock import VirtualClock
from repro.core import (
    DemographicRecommender,
    HotVideoTracker,
    merge_recommendations,
)
from repro.data import GLOBAL_GROUP, ActionType, User, UserAction


class TestHotVideoTracker:
    def test_hot_ranks_by_weight(self):
        tracker = HotVideoTracker(clock=VirtualClock(0.0))
        tracker.record("g", "a", weight=1.0, now=0.0)
        tracker.record("g", "b", weight=5.0, now=0.0)
        assert [v for v, _ in tracker.hot("g", 2, now=0.0)] == ["b", "a"]

    def test_scores_accumulate(self):
        tracker = HotVideoTracker(clock=VirtualClock(0.0))
        for _ in range(3):
            tracker.record("g", "a", weight=1.0, now=0.0)
        assert dict(tracker.hot("g", 1, now=0.0))["a"] == pytest.approx(3.0)

    def test_decay_halves_per_half_life(self):
        tracker = HotVideoTracker(half_life=100.0, clock=VirtualClock(0.0))
        tracker.record("g", "a", weight=4.0, now=0.0)
        assert dict(tracker.hot("g", 1, now=100.0))["a"] == pytest.approx(2.0)

    def test_recency_beats_stale_volume(self):
        """A video hot yesterday loses to one hot right now."""
        tracker = HotVideoTracker(half_life=10.0, clock=VirtualClock(0.0))
        tracker.record("g", "old", weight=10.0, now=0.0)
        tracker.record("g", "new", weight=2.0, now=100.0)
        assert tracker.hot("g", 1, now=100.0)[0][0] == "new"

    def test_groups_isolated(self):
        tracker = HotVideoTracker(clock=VirtualClock(0.0))
        tracker.record("g1", "a", now=0.0)
        tracker.record("g2", "b", now=0.0)
        assert [v for v, _ in tracker.hot("g1", 5, now=0.0)] == ["a"]
        assert set(tracker.groups()) == {"g1", "g2"}

    def test_bounded_tracking_evicts_coldest(self):
        tracker = HotVideoTracker(max_tracked=2, clock=VirtualClock(0.0))
        tracker.record("g", "cold", weight=0.1, now=0.0)
        tracker.record("g", "warm", weight=1.0, now=0.0)
        tracker.record("g", "hot", weight=5.0, now=0.0)
        videos = [v for v, _ in tracker.hot("g", 5, now=0.0)]
        assert "cold" not in videos
        assert len(videos) == 2

    def test_empty_group(self):
        tracker = HotVideoTracker(clock=VirtualClock(0.0))
        assert tracker.hot("nobody", 3) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            HotVideoTracker(half_life=0.0)
        with pytest.raises(ValueError):
            HotVideoTracker(max_tracked=0)


class TestDemographicRecommender:
    @pytest.fixture
    def users(self):
        return {
            "u_m": User("u_m", gender="m", age_band="young"),
            "u_f": User("u_f", gender="f", age_band="adult"),
            "u_anon": User("u_anon", registered=False),
        }

    @pytest.fixture
    def db(self, users):
        return DemographicRecommender(
            users, tracker=HotVideoTracker(clock=VirtualClock(0.0))
        )

    def test_group_routing(self, db):
        assert db.group_for("u_m") == "m|young"
        assert db.group_for("u_anon") == GLOBAL_GROUP
        assert db.group_for("total-stranger") == GLOBAL_GROUP

    def test_record_feeds_group_and_global(self, db):
        db.record(UserAction(0.0, "u_m", "v1", ActionType.CLICK))
        assert [v for v, _ in db.tracker.hot("m|young", 5, now=0.0)] == ["v1"]
        assert [v for v, _ in db.tracker.hot(GLOBAL_GROUP, 5, now=0.0)] == ["v1"]

    def test_impressions_ignored(self, db):
        db.record(UserAction(0.0, "u_m", "v1", ActionType.IMPRESS))
        assert db.tracker.hot("m|young", 5, now=0.0) == []

    def test_group_hot_videos_differ(self, db):
        db.record(UserAction(0.0, "u_m", "male-hit", ActionType.CLICK))
        db.record(UserAction(0.0, "u_f", "female-hit", ActionType.CLICK))
        assert db.recommend("u_m", k=1, now=0.0) == ["male-hit"]
        assert db.recommend("u_f", k=1, now=0.0) == ["female-hit"]

    def test_unregistered_user_gets_global_hot(self, db):
        """§5.2.1: new unregistered users get global hot videos."""
        db.record(UserAction(0.0, "u_m", "hit", ActionType.CLICK))
        assert db.recommend("u_anon", k=1, now=0.0) == ["hit"]

    def test_top_up_from_global_when_group_thin(self, db):
        db.record(UserAction(0.0, "u_m", "own", ActionType.CLICK))
        db.record(UserAction(0.0, "u_f", "other1", ActionType.CLICK))
        db.record(UserAction(0.0, "u_f", "other2", ActionType.CLICK))
        recs = db.recommend("u_m", k=3, now=0.0)
        assert recs[0] == "own"
        assert set(recs[1:]) <= {"other1", "other2"}


class TestMergeRecommendations:
    def test_reserves_db_slots(self):
        merged = merge_recommendations(
            primary=[f"p{i}" for i in range(10)],
            demographic=["d1", "d2"],
            n=10,
            demographic_fraction=0.2,
        )
        assert len(merged) == 10
        assert merged[:8] == [f"p{i}" for i in range(8)]
        assert "d1" in merged and "d2" in merged

    def test_no_duplicates(self):
        merged = merge_recommendations(
            primary=["a", "b", "c"],
            demographic=["b", "d"],
            n=4,
            demographic_fraction=0.5,
        )
        assert len(merged) == len(set(merged))

    def test_backfills_from_primary_when_db_short(self):
        merged = merge_recommendations(
            primary=[f"p{i}" for i in range(10)],
            demographic=[],
            n=10,
            demographic_fraction=0.2,
        )
        assert merged == [f"p{i}" for i in range(10)]

    def test_db_fills_when_primary_short(self):
        """Cold users: DB results complete the list (§5.2.1)."""
        merged = merge_recommendations(
            primary=["p0"],
            demographic=["d0", "d1", "d2"],
            n=4,
            demographic_fraction=0.25,
        )
        assert merged == ["p0", "d0", "d1", "d2"]

    def test_zero_fraction_pure_primary(self):
        merged = merge_recommendations(
            primary=["a", "b"], demographic=["d"], n=2, demographic_fraction=0.0
        )
        assert merged == ["a", "b"]

    def test_validation(self):
        with pytest.raises(ValueError):
            merge_recommendations([], [], n=0, demographic_fraction=0.2)
        with pytest.raises(ValueError):
            merge_recommendations([], [], n=5, demographic_fraction=1.2)
