"""Tests for similarity factors and fusion (Eqs. 9-12)."""

import numpy as np
import pytest

from repro.config import SimilarityConfig
from repro.core import (
    SimilarityScorer,
    cf_similarity,
    damping,
    fuse,
    type_similarity,
)
from repro.data import Video

COMEDY_A = Video("a", "comedy", 100.0)
COMEDY_B = Video("b", "comedy", 200.0)
DRAMA = Video("c", "drama", 300.0)


class TestCFSimilarity:
    def test_inner_product(self):
        assert cf_similarity(np.array([1.0, 2.0]), np.array([3.0, 4.0])) == 11.0

    def test_orthogonal_is_zero(self):
        assert cf_similarity(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == 0.0

    def test_symmetric(self):
        y1, y2 = np.array([0.3, -0.2]), np.array([0.1, 0.9])
        assert cf_similarity(y1, y2) == cf_similarity(y2, y1)


class TestTypeSimilarity:
    def test_same_type_is_one(self):
        assert type_similarity(COMEDY_A, COMEDY_B) == 1.0

    def test_different_type_is_zero(self):
        assert type_similarity(COMEDY_A, DRAMA) == 0.0


class TestDamping:
    def test_no_elapsed_time_no_decay(self):
        assert damping(0.0, xi=100.0) == 1.0

    def test_halves_every_xi(self):
        """Eq. 11: d = 2^(-dt/xi)."""
        assert damping(100.0, xi=100.0) == pytest.approx(0.5)
        assert damping(200.0, xi=100.0) == pytest.approx(0.25)

    def test_monotone_decreasing(self):
        values = [damping(t, xi=50.0) for t in (0, 10, 100, 1000)]
        assert values == sorted(values, reverse=True)

    def test_bounded_in_unit_interval(self):
        # Very large elapsed times may underflow to exactly 0.0 — fine.
        for t in (0.0, 1.0, 1e6):
            assert 0.0 <= damping(t, xi=100.0) <= 1.0
        assert damping(10.0, xi=100.0) > 0.0

    def test_negative_elapsed_clamped(self):
        """Clock skew must not amplify similarities."""
        assert damping(-50.0, xi=100.0) == 1.0

    def test_invalid_xi(self):
        with pytest.raises(ValueError):
            damping(1.0, xi=0.0)


class TestFusion:
    def test_convex_combination(self):
        """Eq. 12 inner term: (1-beta)*s1 + beta*s2."""
        assert fuse(1.0, 0.0, beta=0.2) == pytest.approx(0.8)
        assert fuse(0.0, 1.0, beta=0.2) == pytest.approx(0.2)

    def test_beta_zero_is_pure_cf(self):
        assert fuse(0.7, 1.0, beta=0.0) == pytest.approx(0.7)

    def test_beta_one_is_pure_type(self):
        assert fuse(0.7, 1.0, beta=1.0) == pytest.approx(1.0)

    def test_invalid_beta(self):
        with pytest.raises(ValueError):
            fuse(0.5, 0.5, beta=-0.1)


class TestSimilarityScorer:
    @pytest.fixture
    def scorer(self):
        return SimilarityScorer(SimilarityConfig(beta=0.25, xi=100.0))

    def test_raw_relevance_combines_factors(self, scorer):
        y = np.array([1.0, 0.0])
        raw_same = scorer.raw_relevance(COMEDY_A, y, COMEDY_B, y)
        raw_diff = scorer.raw_relevance(COMEDY_A, y, DRAMA, y)
        # identical vectors: s1 = 1; same type adds beta * 1
        assert raw_same == pytest.approx(0.75 * 1.0 + 0.25 * 1.0)
        assert raw_diff == pytest.approx(0.75 * 1.0)

    def test_damped_relevance(self, scorer):
        assert scorer.damped(1.0, elapsed=100.0) == pytest.approx(0.5)

    def test_full_relevance_eq12(self, scorer):
        y1, y2 = np.array([0.5, 0.5]), np.array([0.5, -0.5])
        full = scorer.relevance(COMEDY_A, y1, COMEDY_B, y2, elapsed=100.0)
        raw = scorer.raw_relevance(COMEDY_A, y1, COMEDY_B, y2)
        assert full == pytest.approx(raw * 0.5)

    def test_stale_similarity_forgotten(self, scorer):
        """After many half-lives the relevance is negligible — 'the past
        similar videos should be gradually forgotten'."""
        y = np.array([1.0, 0.0])
        assert scorer.relevance(COMEDY_A, y, COMEDY_B, y, elapsed=10_000.0) < 1e-20
