"""Tests for the §6.1.2 model variants."""

import pytest

from repro.core import (
    ALL_VARIANTS,
    BINARY_MODEL,
    COMBINE_MODEL,
    CONF_MODEL,
    RatingMode,
    variant_by_name,
)
from repro.core.variants import grid_searched_rates


def test_three_variants():
    assert len(ALL_VARIANTS) == 3
    assert {v.name for v in ALL_VARIANTS} == {
        "BinaryModel",
        "ConfModel",
        "CombineModel",
    }


def test_binary_model_semantics():
    assert BINARY_MODEL.rating_mode is RatingMode.BINARY
    assert not BINARY_MODEL.adjustable


def test_conf_model_semantics():
    assert CONF_MODEL.rating_mode is RatingMode.CONFIDENCE
    assert not CONF_MODEL.adjustable


def test_combine_model_semantics():
    """The paper's model: binary ratings + adjustable learning rate."""
    assert COMBINE_MODEL.rating_mode is RatingMode.BINARY
    assert COMBINE_MODEL.adjustable


def test_lookup_by_name_case_insensitive():
    assert variant_by_name("combinemodel") is COMBINE_MODEL
    assert variant_by_name("BinaryModel") is BINARY_MODEL


def test_lookup_unknown_raises():
    with pytest.raises(KeyError):
        variant_by_name("MegaModel")


def test_grid_searched_rates_cover_all_variants():
    for variant in ALL_VARIANTS:
        eta0, alpha = grid_searched_rates(variant)
        assert eta0 > 0
        assert alpha >= 0
        if not variant.adjustable:
            assert alpha == 0.0
