"""Edge-case tests across the core package."""

import pytest

from repro.clock import VirtualClock
from repro.core import (
    HotVideoTracker,
    MFModel,
    RealtimeRecommender,
    SimilarVideoTable,
)
from repro.config import MFConfig, SimilarityConfig
from repro.data import ActionType, UserAction, Video
from repro.kvstore import InMemoryKVStore, Namespace


class TestRecommenderEdges:
    def test_n_larger_than_catalogue(self, small_world, small_split):
        rec = RealtimeRecommender(
            small_world.videos, users=small_world.users, clock=VirtualClock(0.0)
        )
        rec.observe_stream(small_split.train[:500])
        now = small_split.train[500].timestamp
        result = rec.recommend_ids("u0", n=10_000, now=now)
        assert len(result) <= len(small_world.videos)
        assert len(result) == len(set(result))

    def test_action_for_unknown_video_is_harmless(self, small_world):
        rec = RealtimeRecommender(small_world.videos, clock=VirtualClock(0.0))
        rec.observe(UserAction(0.0, "u0", "not-in-catalogue", ActionType.CLICK))
        # trains the MF pair (ids are opaque to MF) but cannot enter the
        # similar tables (no metadata) — and nothing crashes.
        assert rec.model.has_video("not-in-catalogue")
        assert "not-in-catalogue" not in rec.table

    def test_same_timestamp_actions(self, small_world):
        rec = RealtimeRecommender(small_world.videos, clock=VirtualClock(0.0))
        for video in ("v0", "v1", "v2"):
            rec.observe(UserAction(5.0, "u0", video, ActionType.CLICK))
        assert rec.history.recent("u0")[0] == "v2"

    def test_recommend_before_any_observation(self, small_world):
        rec = RealtimeRecommender(
            small_world.videos, clock=VirtualClock(0.0), enable_demographic=False
        )
        assert rec.recommend_ids("u0", n=5) == []


class TestHotTrackerClockSkew:
    def test_out_of_order_timestamps_never_amplify(self):
        tracker = HotVideoTracker(half_life=100.0, clock=VirtualClock(0.0))
        tracker.record("g", "a", weight=1.0, now=1000.0)
        # an event arriving with an older timestamp must not inflate scores
        tracker.record("g", "a", weight=1.0, now=500.0)
        score = dict(tracker.hot("g", 1, now=1000.0))["a"]
        assert score <= 2.0 + 1e-9


class TestSimTableEdges:
    def test_table_size_one(self):
        videos = {f"v{i}": Video(f"v{i}", "t", 100.0) for i in range(4)}
        model = MFModel(MFConfig(f=4, init_scale=0.5, seed=1))
        for vid in videos:
            model.ensure_video(vid)
        table = SimilarVideoTable(
            videos,
            model,
            config=SimilarityConfig(table_size=1, xi=100.0, candidate_pool=1),
            clock=VirtualClock(0.0),
        )
        table.offer_pair("v0", "v1", now=0.0)
        table.offer_pair("v0", "v2", now=0.0)
        table.offer_pair("v0", "v3", now=0.0)
        assert len(table.raw_entries("v0")) == 1


class TestNamespaceMixedBacking:
    def test_namespace_ignores_foreign_raw_keys(self):
        backing = InMemoryKVStore()
        backing.put("raw-key", 1)  # someone wrote directly to the backing
        backing.put(("other", "k"), 2)
        ns = Namespace(backing, "mine")
        ns.put("k", 3)
        assert list(ns.keys()) == ["k"]
        assert len(ns) == 1


class TestMFModelEdges:
    def test_predict_many_empty_list(self):
        model = MFModel(MFConfig(f=4))
        scores = model.predict_many("u", [])
        assert scores.shape == (0,)

    def test_zero_regularization(self):
        model = MFModel(MFConfig(f=4, lam=0.0, seed=1))
        update = model.sgd_step("u", "v", 1.0, eta=0.1)
        assert update.error != 0.0

    def test_huge_rating_does_not_nan(self):
        model = MFModel(MFConfig(f=4, seed=1))
        update = model.sgd_step("u", "v", 1e6, eta=0.001)
        import numpy as np

        assert np.isfinite(update.x_u).all()
        assert np.isfinite(update.b_u)
