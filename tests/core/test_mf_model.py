"""Tests for the biased MF model (Eqs. 2-5)."""

import numpy as np
import pytest

from repro.config import MFConfig
from repro.core import MFModel
from repro.errors import ModelError
from repro.kvstore import InMemoryKVStore


@pytest.fixture
def model():
    return MFModel(MFConfig(f=8, init_scale=0.1, lam=0.02, seed=3))


class TestInitialisation:
    def test_unknown_entities_have_no_vectors(self, model):
        assert model.user_vector("u1") is None
        assert model.video_vector("v1") is None
        assert not model.has_user("u1")

    def test_ensure_creates_vector(self, model):
        x = model.ensure_user("u1")
        assert x.shape == (8,)
        assert model.has_user("u1")

    def test_ensure_is_idempotent(self, model):
        x1 = model.ensure_user("u1")
        x2 = model.ensure_user("u1")
        assert np.array_equal(x1, x2)

    def test_init_deterministic_per_entity(self):
        """Any worker initialising the same entity gets the same vector —
        the idempotence the topology's persist_init=False path needs."""
        store = InMemoryKVStore()
        m1 = MFModel(MFConfig(f=8, seed=3), store=InMemoryKVStore())
        m2 = MFModel(MFConfig(f=8, seed=3), store=store)
        assert np.array_equal(m1.ensure_user("u9"), m2.ensure_user("u9"))

    def test_users_and_videos_independent(self, model):
        x = model.ensure_user("e1")
        y = model.ensure_video("e1")
        assert not np.array_equal(x, y)

    def test_counts(self, model):
        model.ensure_user("u1")
        model.ensure_user("u2")
        model.ensure_video("v1")
        assert model.n_users == 2
        assert model.n_videos == 1
        assert set(model.known_videos()) == {"v1"}


class TestMu:
    def test_starts_at_zero(self, model):
        assert model.mu == 0.0

    def test_running_average(self, model):
        for r in (1.0, 0.0, 1.0, 0.0):
            model.observe_rating(r)
        assert model.mu == pytest.approx(0.5)


class TestPrediction:
    def test_cold_prediction_is_mu(self, model):
        model.observe_rating(1.0)
        model.observe_rating(0.0)
        assert model.predict("u?", "v?") == pytest.approx(0.5)

    def test_prediction_formula(self, model):
        """Eq. 2: r_hat = mu + b_u + b_i + x.y"""
        model.observe_rating(1.0)
        x = model.ensure_user("u")
        y = model.ensure_video("v")
        update = model.sgd_step("u", "v", 1.0, eta=0.1)
        expected = (
            model.mu
            + model.user_bias("u")
            + model.video_bias("v")
            + float(model.user_vector("u") @ model.video_vector("v"))
        )
        assert model.predict("u", "v") == pytest.approx(expected)

    def test_predict_many_matches_predict(self, model):
        model.ensure_user("u")
        for i in range(5):
            model.ensure_video(f"v{i}")
        model.sgd_step("u", "v0", 1.0, 0.05)
        videos = [f"v{i}" for i in range(5)] + ["missing"]
        scores = model.predict_many("u", videos)
        for video, score in zip(videos, scores):
            assert score == pytest.approx(model.predict("u", video))

    def test_error_is_rating_minus_prediction(self, model):
        model.ensure_user("u")
        model.ensure_video("v")
        e = model.error("u", "v", 1.0)
        assert e == pytest.approx(1.0 - model.predict("u", "v"))


class TestSGDStep:
    def test_update_reduces_error(self, model):
        """One step with small eta strictly reduces |e| for that pair."""
        before = abs(model.error("u", "v", 1.0))
        model.ensure_user("u")
        model.ensure_video("v")
        before = abs(model.error("u", "v", 1.0))
        model.sgd_step("u", "v", 1.0, eta=0.1)
        after = abs(model.error("u", "v", 1.0))
        assert after < before

    def test_repeated_updates_converge(self, model):
        for _ in range(300):
            model.sgd_step("u", "v", 1.0, eta=0.1)
        assert model.predict("u", "v") == pytest.approx(1.0, abs=0.05)

    def test_update_touches_only_involved_entities(self, model):
        model.sgd_step("u1", "v1", 1.0, 0.1)
        y_before = model.ensure_video("v2").copy()
        b_before = model.video_bias("v2")
        model.sgd_step("u1", "v1", 1.0, 0.1)
        assert np.array_equal(model.video_vector("v2"), y_before)
        assert model.video_bias("v2") == b_before

    def test_error_sign_updates_direction(self, model):
        """Positive error raises the prediction; negative error lowers it."""
        model.ensure_user("u")
        model.ensure_video("v")
        p0 = model.predict("u", "v")
        model.sgd_step("u", "v", p0 + 1.0, eta=0.1)
        assert model.predict("u", "v") > p0
        p1 = model.predict("u", "v")
        model.sgd_step("u", "v", p1 - 1.0, eta=0.1)
        assert model.predict("u", "v") < p1

    def test_nonpositive_eta_rejected(self, model):
        with pytest.raises(ModelError):
            model.sgd_step("u", "v", 1.0, eta=0.0)

    def test_regularization_shrinks_unsupported_weights(self):
        """With rating == current prediction (e=0), lambda decays params."""
        model = MFModel(MFConfig(f=4, lam=0.5, init_scale=0.5, seed=1))
        model.ensure_user("u")
        model.ensure_video("v")
        norm_before = np.linalg.norm(model.user_vector("u"))
        target = model.predict("u", "v")
        model.sgd_step("u", "v", target, eta=0.1)
        assert np.linalg.norm(model.user_vector("u")) < norm_before

    def test_compute_update_without_persist_init_does_not_store(self, model):
        update = model.compute_update("u", "v", 1.0, 0.1, persist_init=False)
        assert not model.has_user("u")
        assert not model.has_video("v")
        assert update.x_u.shape == (8,)

    def test_compute_then_apply_equals_sgd_step(self):
        m1 = MFModel(MFConfig(f=8, seed=3))
        m2 = MFModel(MFConfig(f=8, seed=3))
        u1 = m1.sgd_step("u", "v", 1.0, 0.1)
        u2 = m2.compute_update("u", "v", 1.0, 0.1, persist_init=False)
        m2.apply_update(u2)
        assert np.allclose(m1.user_vector("u"), m2.user_vector("u"))
        assert np.allclose(m1.video_vector("v"), m2.video_vector("v"))
        assert m1.user_bias("u") == pytest.approx(m2.user_bias("u"))

    def test_put_user_put_video(self, model):
        x = np.ones(8)
        model.put_user("u", x, 0.5)
        assert np.array_equal(model.user_vector("u"), x)
        assert model.user_bias("u") == 0.5
        model.put_video("v", 2 * x, -0.25)
        assert model.video_bias("v") == -0.25


class TestBatchTraining:
    def test_rmse_decreases_over_epochs(self):
        rng = np.random.default_rng(0)
        ratings = [
            (f"u{i % 10}", f"v{i % 15}", float(rng.integers(0, 2)))
            for i in range(200)
        ]
        model = MFModel(MFConfig(f=8, seed=1))
        history = model.fit_batch(ratings, epochs=8, eta=0.05)
        assert history[-1] < history[0]

    def test_mu_set_to_dataset_mean(self):
        model = MFModel(MFConfig(f=4))
        model.fit_batch([("u", "v", 1.0), ("u", "w", 0.0)], epochs=1)
        assert model.mu == pytest.approx(0.5)

    def test_empty_dataset_rejected(self):
        with pytest.raises(ModelError):
            MFModel().fit_batch([])

    def test_shared_store_is_the_single_source_of_truth(self):
        """Two MFModel views over one store see each other's writes."""
        store = InMemoryKVStore()
        writer = MFModel(MFConfig(f=4, seed=2), store=store)
        reader = MFModel(MFConfig(f=4, seed=2), store=store)
        writer.sgd_step("u", "v", 1.0, 0.1)
        assert reader.has_user("u")
        assert np.array_equal(reader.user_vector("u"), writer.user_vector("u"))
