"""Tests for the reservoir-replay training extension."""

import pytest

from repro.config import OnlineConfig
from repro.core import MFModel, OnlineTrainer
from repro.core.reservoir import Reservoir, ReservoirTrainer
from repro.core.variants import COMBINE_MODEL
from repro.data import ActionType, UserAction, Video

VIDEOS = {f"v{i}": Video(f"v{i}", "t", duration=1000.0) for i in range(20)}


def _click(user, video, ts=0.0):
    return UserAction(ts, user, video, ActionType.CLICK)


def _trainer():
    return OnlineTrainer(
        MFModel(), videos=VIDEOS, variant=COMBINE_MODEL,
        config=OnlineConfig(eta0=0.01, alpha=0.01),
    )


class TestReservoir:
    def test_fills_up_to_capacity(self):
        reservoir = Reservoir(capacity=5)
        for i in range(5):
            reservoir.offer(_click("u", f"v{i}", float(i)))
        assert len(reservoir) == 5

    def test_never_exceeds_capacity(self):
        reservoir = Reservoir(capacity=5)
        for i in range(100):
            reservoir.offer(_click("u", f"v{i % 20}", float(i)))
        assert len(reservoir) == 5
        assert reservoir.seen == 100

    def test_uniform_sampling_property(self):
        """Algorithm R: each element survives with probability k/n.

        With capacity 10 over 100 elements, early and late elements should
        be retained at comparable rates across many runs.
        """
        early_hits = late_hits = 0
        for seed in range(300):
            reservoir = Reservoir(capacity=10, seed=seed)
            for i in range(100):
                reservoir.offer(_click("u", f"v{i % 20}", float(i)))
            kept = {a.timestamp for a in reservoir.sample(10)}
            early_hits += sum(1 for t in kept if t < 50)
            late_hits += sum(1 for t in kept if t >= 50)
        ratio = early_hits / late_hits
        assert 0.7 < ratio < 1.4

    def test_sample_bounded(self):
        reservoir = Reservoir(capacity=5)
        reservoir.offer(_click("u", "v1"))
        assert len(reservoir.sample(10)) == 1
        assert reservoir.sample(0) == []

    def test_empty_sample(self):
        assert Reservoir(capacity=3).sample(2) == []

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Reservoir(capacity=0)


class TestReservoirTrainer:
    def test_zero_replays_equals_plain_trainer(self):
        plain = _trainer()
        wrapped = ReservoirTrainer(_trainer(), capacity=50, replays=0)
        stream = [_click(f"u{i % 4}", f"v{i % 6}", float(i)) for i in range(40)]
        for action in stream:
            plain.process(action)
            wrapped.process(action)
        for user in ("u0", "u3"):
            for video in ("v0", "v5"):
                assert wrapped.model.predict(user, video) == pytest.approx(
                    plain.model.predict(user, video)
                )
        assert wrapped.stats.replayed == 0

    def test_replays_happen(self):
        wrapped = ReservoirTrainer(_trainer(), capacity=50, replays=2, seed=1)
        stream = [_click(f"u{i % 4}", f"v{i % 6}", float(i)) for i in range(40)]
        wrapped.process_stream(stream)
        assert wrapped.stats.replayed > 0
        assert len(wrapped.reservoir) == 40

    def test_impressions_not_stored(self):
        wrapped = ReservoirTrainer(_trainer(), capacity=10, replays=1)
        wrapped.process(UserAction(0.0, "u", "v1", ActionType.IMPRESS))
        assert len(wrapped.reservoir) == 0

    def test_replay_accelerates_convergence(self):
        """Replaying history drives pair predictions further per new
        observation — the benefit the reservoir approach buys."""
        plain = _trainer()
        wrapped = ReservoirTrainer(_trainer(), capacity=100, replays=3, seed=2)
        stream = []
        for i in range(30):
            # impressions keep mu < 1, so positives carry real error signal
            stream.append(
                UserAction(float(i), "u0", f"v{i % 3}", ActionType.IMPRESS)
            )
            stream.append(_click("u0", f"v{i % 3}", float(i) + 0.5))
        for action in stream:
            plain.process(action)
            wrapped.process(action)
        plain_score = plain.model.predict("u0", "v0")
        replay_score = wrapped.model.predict("u0", "v0")
        assert replay_score > plain_score

    def test_validation(self):
        with pytest.raises(ValueError):
            ReservoirTrainer(_trainer(), replays=-1)
