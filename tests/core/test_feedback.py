"""Tests for the implicit-feedback solution (Eq. 7)."""

import pytest

from repro.core import LogPlaytimeWeigher, RatingMode, extract_feedback
from repro.data import ActionType, UserAction, Video

VIDEO = Video("v1", "t", duration=1000.0)
WEIGHER = LogPlaytimeWeigher()


def _feedback(action, mode=RatingMode.BINARY, video=None):
    return extract_feedback(action, WEIGHER, mode, video)


class TestBinaryMode:
    def test_impress_is_zero_rating_zero_confidence(self):
        fb = _feedback(UserAction(0, "u", "v1", ActionType.IMPRESS))
        assert fb.rating == 0.0
        assert fb.confidence == 0.0
        assert not fb.is_positive

    def test_any_engagement_is_rating_one(self):
        """Eq. 7: r = 1 whenever w > 0, regardless of action strength."""
        for kind in (ActionType.CLICK, ActionType.PLAY, ActionType.LIKE):
            fb = _feedback(UserAction(0, "u", "v1", kind))
            assert fb.rating == 1.0
            assert fb.is_positive

    def test_confidence_carries_action_weight(self):
        click = _feedback(UserAction(0, "u", "v1", ActionType.CLICK))
        like = _feedback(UserAction(0, "u", "v1", ActionType.LIKE))
        assert like.confidence > click.confidence
        assert click.rating == like.rating == 1.0

    def test_playtime_confidence_uses_view_rate(self):
        short = _feedback(
            UserAction(0, "u", "v1", ActionType.PLAYTIME, view_time=150.0),
            video=VIDEO,
        )
        long = _feedback(
            UserAction(0, "u", "v1", ActionType.PLAYTIME, view_time=900.0),
            video=VIDEO,
        )
        assert long.confidence > short.confidence
        assert short.rating == long.rating == 1.0


class TestConfidenceMode:
    def test_rating_equals_weight(self):
        fb = _feedback(
            UserAction(0, "u", "v1", ActionType.PLAY),
            mode=RatingMode.CONFIDENCE,
        )
        assert fb.rating == fb.confidence == pytest.approx(1.5)

    def test_impress_still_zero(self):
        fb = _feedback(
            UserAction(0, "u", "v1", ActionType.IMPRESS),
            mode=RatingMode.CONFIDENCE,
        )
        assert fb.rating == 0.0
        assert not fb.is_positive
