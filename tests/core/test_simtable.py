"""Tests for similar-video tables (§4.2) and pair generation."""

import pytest

from repro.clock import VirtualClock
from repro.config import SimilarityConfig
from repro.core import MFModel, SimilarVideoTable, generate_pairs
from repro.config import MFConfig
from repro.data import Video


def _videos(n=6, kinds=("a", "b")):
    return {
        f"v{i}": Video(f"v{i}", kinds[i % len(kinds)], duration=100.0)
        for i in range(n)
    }


@pytest.fixture
def setup():
    videos = _videos()
    model = MFModel(MFConfig(f=4, init_scale=0.5, seed=1))
    for vid in videos:
        model.ensure_video(vid)
    clock = VirtualClock(0.0)
    table = SimilarVideoTable(
        videos,
        model,
        config=SimilarityConfig(table_size=3, xi=100.0, candidate_pool=3),
        clock=clock,
    )
    return videos, model, clock, table


class TestGeneratePairs:
    def test_pairs_new_video_with_history(self):
        pairs = generate_pairs("new", ["h1", "h2", "h3"])
        assert pairs == [("new", "h1"), ("new", "h2"), ("new", "h3")]

    def test_excludes_self_pair(self):
        pairs = generate_pairs("h2", ["h1", "h2", "h3"])
        assert ("h2", "h2") not in pairs
        assert len(pairs) == 2

    def test_respects_limit(self):
        pairs = generate_pairs("new", [f"h{i}" for i in range(50)], limit=5)
        assert len(pairs) == 5

    def test_empty_history(self):
        assert generate_pairs("new", []) == []


class TestOfferPair:
    def test_both_directions_updated(self, setup):
        videos, model, clock, table = setup
        raw = table.offer_pair("v0", "v1", now=0.0)
        assert raw is not None
        assert "v1" in dict(table.neighbors("v0"))
        assert "v0" in dict(table.neighbors("v1"))

    def test_self_pair_ignored(self, setup):
        _, _, _, table = setup
        assert table.offer_pair("v0", "v0") is None

    def test_unknown_video_ignored(self, setup):
        _, _, _, table = setup
        assert table.offer_pair("v0", "ghost") is None
        assert table.neighbors("v0") == []

    def test_video_without_vector_ignored(self, setup):
        videos, model, clock, table = setup
        videos["fresh"] = Video("fresh", "a", 50.0)
        assert table.offer_pair("v0", "fresh") is None

    def test_score_pair_does_not_mutate(self, setup):
        _, _, _, table = setup
        raw = table.score_pair("v0", "v1")
        assert raw is not None
        assert table.neighbors("v0") == []

    def test_refresh_updates_timestamp(self, setup):
        videos, model, clock, table = setup
        table.offer_pair("v0", "v1", now=0.0)
        stale = table.neighbors("v0", now=150.0)
        table.offer_pair("v0", "v1", now=150.0)
        fresh = table.neighbors("v0", now=150.0)
        assert dict(fresh)["v1"] > dict(stale)["v1"]


class TestTopKEviction:
    def test_table_bounded(self, setup):
        _, _, _, table = setup
        for other in ("v1", "v2", "v3", "v4", "v5"):
            table.offer_pair("v0", other, now=0.0)
        assert len(table.raw_entries("v0")) == 3

    def test_weakest_evicted(self, setup):
        videos, model, clock, table = setup
        for other in ("v1", "v2", "v3", "v4", "v5"):
            table.offer_pair("v0", other, now=0.0)
        kept = table.raw_entries("v0")
        all_raw = {
            other: table.score_pair("v0", other)
            for other in ("v1", "v2", "v3", "v4", "v5")
        }
        kept_scores = sorted(all_raw[o] for o in kept)
        dropped_scores = sorted(
            all_raw[o] for o in all_raw if o not in kept
        )
        assert min(kept_scores) >= max(dropped_scores)


class TestNeighbors:
    def test_sorted_descending(self, setup):
        _, _, _, table = setup
        for other in ("v1", "v2", "v3"):
            table.offer_pair("v0", other, now=0.0)
        sims = [s for _, s in table.neighbors("v0")]
        assert sims == sorted(sims, reverse=True)

    def test_damping_applied_at_read_time(self, setup):
        videos, model, clock, table = setup
        table.offer_pair("v0", "v1", now=0.0)
        now0 = dict(table.neighbors("v0", now=0.0)).get("v1")
        later = dict(table.neighbors("v0", now=100.0)).get("v1")
        if now0 is not None and now0 > 0:
            assert later == pytest.approx(now0 * 0.5)

    def test_k_limits_results(self, setup):
        _, _, _, table = setup
        for other in ("v1", "v2", "v3"):
            table.offer_pair("v0", other, now=0.0)
        assert len(table.neighbors("v0", k=1)) == 1

    def test_unknown_video_empty(self, setup):
        _, _, _, table = setup
        assert table.neighbors("never-seen") == []

    def test_clock_used_when_now_omitted(self, setup):
        videos, model, clock, table = setup
        table.offer_pair("v0", "v1", now=0.0)
        at_zero = dict(table.neighbors("v0"))
        clock.advance(100.0)
        at_hundred = dict(table.neighbors("v0"))
        if at_zero.get("v1", 0) > 0:
            assert at_hundred["v1"] < at_zero["v1"]

    def test_tracked_videos(self, setup):
        _, _, _, table = setup
        table.offer_pair("v0", "v1", now=0.0)
        assert set(table.tracked_videos()) == {"v0", "v1"}
        assert "v0" in table
        assert "v5" not in table
