"""Unit tests for the shared-memory factor arena.

Covers the ``FactorArena`` API contract over shared segments, the
generation-based growth/remap protocol, attach-by-name (and pickling as an
attach handle), the shared ``mu`` accumulator, coherent snapshots, bulk
restore, and segment lifecycle (owner unlinks, attachers only close).
"""

import multiprocessing as mp
import os
import pickle

import numpy as np
import pytest

from repro.core import FactorArena, SharedFactorArena, SharedModelState


def _shm_entries() -> set[str]:
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux
        return set()
    return {name for name in os.listdir("/dev/shm") if "repro-" in name}


@pytest.fixture
def arena():
    a = SharedFactorArena(f=4, initial_capacity=2)
    yield a
    a.unlink()


class TestBasicOps:
    def test_put_and_read_back(self, arena):
        arena.put("u1", np.arange(4.0), 0.5)
        assert np.array_equal(arena.vector("u1"), np.arange(4.0))
        assert arena.bias("u1") == 0.5
        assert "u1" in arena
        assert len(arena) == 1

    def test_unknown_entity(self, arena):
        assert arena.vector("nope") is None
        assert arena.bias("nope") == 0.0
        assert arena.bias("nope", default=7.0) == 7.0
        assert "nope" not in arena

    def test_vector_returns_a_copy(self, arena):
        arena.put("u1", np.ones(4), 0.0)
        got = arena.vector("u1")
        got[:] = 99.0
        assert np.array_equal(arena.vector("u1"), np.ones(4))

    def test_set_vector_then_bias(self, arena):
        arena.set_vector("u1", np.full(4, 2.0))
        arena.set_bias("u1", -1.5)
        assert np.array_equal(arena.vector("u1"), np.full(4, 2.0))
        assert arena.bias("u1") == -1.5

    def test_setdefault_vector_initialises_once(self, arena):
        first = arena.setdefault_vector("u1", lambda: np.full(4, 3.0))
        second = arena.setdefault_vector("u1", lambda: np.full(4, 9.0))
        assert np.array_equal(first, np.full(4, 3.0))
        assert np.array_equal(second, np.full(4, 3.0))

    def test_delete(self, arena):
        arena.put("u1", np.ones(4), 1.0)
        assert arena.delete("u1") is True
        assert arena.delete("u1") is False
        assert arena.vector("u1") is None
        assert len(arena) == 0

    def test_put_many_and_items(self, arena):
        arena.put_many(
            [(f"u{i}", np.full(4, float(i)), float(i)) for i in range(5)]
        )
        assert len(arena) == 5
        items = {eid: (vec, bias) for eid, vec, bias in arena.items()}
        assert set(items) == {f"u{i}" for i in range(5)}
        assert np.array_equal(items["u3"][0], np.full(4, 3.0))

    def test_batch_reads_match_scalar(self, arena):
        for i in range(6):
            arena.put(f"u{i}", np.full(4, float(i)), float(i) / 2)
        ids = [f"u{i}" for i in range(6)] + ["missing"]
        many = arena.vectors_many(ids)
        matrix = arena.vectors_matrix(ids)
        biases = arena.biases_array(ids)
        for row, eid in enumerate(ids):
            expected = arena.vector(eid)
            if expected is None:
                assert many[row] is None
                assert np.array_equal(matrix[row], np.zeros(4))
                assert biases[row] == 0.0
            else:
                assert np.array_equal(many[row], expected)
                assert np.array_equal(matrix[row], expected)
                assert biases[row] == arena.bias(eid)

    def test_rejects_wrong_dimension(self, arena):
        with pytest.raises(ValueError, match="shape"):
            arena.put("u1", np.ones(3), 0.0)

    def test_rejects_newline_in_id(self, arena):
        with pytest.raises(ValueError, match="newline"):
            arena.put("bad\nid", np.ones(4), 0.0)

    def test_validates_construction(self):
        with pytest.raises(ValueError, match="dimensionality"):
            SharedFactorArena(f=0)
        with pytest.raises(ValueError, match="initial_capacity"):
            SharedFactorArena(f=2, initial_capacity=0)


class TestGrowth:
    def test_data_generation_bumps_and_rows_survive(self, arena):
        for i in range(40):  # well past initial_capacity=2
            arena.put(f"u{i}", np.full(4, float(i)), float(i))
        data_gen, _ = arena.generation()
        assert data_gen >= 1
        assert arena.capacity() >= 40
        for i in range(40):
            assert np.array_equal(arena.vector(f"u{i}"), np.full(4, float(i)))

    def test_ids_blob_growth(self):
        a = SharedFactorArena(f=2, initial_capacity=4, ids_capacity=64)
        try:
            long_ids = [f"entity-{'x' * 40}-{i}" for i in range(30)]
            for eid in long_ids:
                a.put(eid, np.zeros(2), 0.0)
            _, ids_gen = a.generation()
            assert ids_gen >= 1
            assert sorted(a.ids()) == sorted(long_ids)
        finally:
            a.unlink()

    def test_stale_attacher_follows_growth(self, arena):
        other = SharedFactorArena.attach(arena.name)
        arena.put("u0", np.ones(4), 1.0)
        assert np.array_equal(other.vector("u0"), np.ones(4))
        # Force several generations while `other` holds old mappings.
        for i in range(64):
            arena.put(f"u{i}", np.full(4, float(i)), 0.0)
        assert np.array_equal(other.vector("u63"), np.full(4, 63.0))
        assert len(other) == 64
        other.close()


class TestAttachAndPickle:
    def test_attach_sees_writes_both_ways(self, arena):
        other = SharedFactorArena.attach(arena.name)
        arena.put("from-owner", np.ones(4), 1.0)
        assert np.array_equal(other.vector("from-owner"), np.ones(4))
        other.put("from-attacher", np.full(4, 2.0), 2.0)
        assert np.array_equal(arena.vector("from-attacher"), np.full(4, 2.0))
        assert not other.owner
        other.close()

    def test_attach_unknown_name_raises(self):
        with pytest.raises(FileNotFoundError):
            SharedFactorArena.attach("repro-arena-does-not-exist")

    def test_pickle_roundtrip_is_attach(self, arena):
        arena.put("u1", np.arange(4.0), 0.25)
        clone = pickle.loads(pickle.dumps(arena))
        assert clone.name == arena.name
        assert not clone.owner
        assert np.array_equal(clone.vector("u1"), np.arange(4.0))
        clone.close()

    def test_cross_process_visibility(self, arena):
        def child(name, done):
            worker = SharedFactorArena.attach(name)
            worker.put("child-row", np.full(4, 7.0), 7.0)
            worker.close()
            done.set()

        ctx = mp.get_context("fork")
        done = ctx.Event()
        proc = ctx.Process(target=child, args=(arena.name, done))
        proc.start()
        proc.join(timeout=30)
        assert done.is_set()
        assert np.array_equal(arena.vector("child-row"), np.full(4, 7.0))


class TestMu:
    def test_mu_fold_and_state(self, arena):
        assert arena.mu_state() == (0.0, 0)
        arena.mu_fold([1.0, 0.0, 1.0, 1.0])
        assert arena.mu_state() == (3.0, 4)
        arena.mu_fold([])
        assert arena.mu_state() == (3.0, 4)

    def test_mu_set(self, arena):
        arena.mu_set(10.0, 20)
        assert arena.mu_state() == (10.0, 20)


class TestSnapshotRestore:
    def test_snapshot_is_plain_arena(self, arena):
        for i in range(10):
            arena.put(f"u{i}", np.full(4, float(i)), float(i))
        snap = arena.snapshot()
        assert isinstance(snap, FactorArena)
        assert len(snap) == 10
        # Detached: later writes don't show up in the snapshot.
        arena.put("u0", np.full(4, 99.0), 99.0)
        assert np.array_equal(snap.vector("u0"), np.zeros(4))

    def test_load_arena_round_trip(self, arena):
        for i in range(8):
            arena.put(f"u{i}", np.full(4, float(i)), float(i))
        arena.delete("u3")
        snap = arena.snapshot()
        arena.put("u0", np.full(4, -1.0), -1.0)
        arena.put("u3", np.full(4, 5.0), 5.0)
        arena.load_arena(snap)
        assert np.array_equal(arena.vector("u0"), np.zeros(4))
        assert arena.vector("u3") is None
        assert len(arena) == 7

    def test_export_rows_shapes(self, arena):
        arena.put("a", np.ones(4), 1.0)
        arena.put("b", np.full(4, 2.0), 2.0)
        ids, vecs, biases, has_vec = arena.export_rows()
        assert ids == ["a", "b"]
        assert vecs.shape == (2, 4)
        assert biases.shape == (2,)
        assert has_vec.dtype == bool and has_vec.all()


class TestLifecycle:
    def test_unlink_removes_all_segments(self):
        before = _shm_entries()
        a = SharedFactorArena(f=4, initial_capacity=2)
        for i in range(20):  # force at least one growth generation
            a.put(f"u{i}", np.zeros(4), 0.0)
        assert _shm_entries() > before
        a.unlink()
        assert _shm_entries() == before

    def test_growth_does_not_accumulate_segments(self):
        before = _shm_entries()
        a = SharedFactorArena(f=2, initial_capacity=1)
        try:
            for i in range(100):  # many doublings
                a.put(f"u{i}", np.zeros(2), 0.0)
            # Exactly one data + one ids + one ctl segment + the lock
            # file — old generations must have been unlinked as they
            # were superseded.
            assert len(_shm_entries() - before) == 4
        finally:
            a.unlink()

    def test_context_manager_owner_unlinks(self):
        before = _shm_entries()
        with SharedFactorArena(f=2) as a:
            a.put("u", np.zeros(2), 0.0)
            name = a.name
        assert _shm_entries() == before
        with pytest.raises(FileNotFoundError):
            SharedFactorArena.attach(name)

    def test_context_manager_attacher_only_closes(self, arena):
        arena.put("u", np.ones(4), 1.0)
        with SharedFactorArena.attach(arena.name) as other:
            assert np.array_equal(other.vector("u"), np.ones(4))
        # Attacher exit must not have torn down the shared segments.
        assert np.array_equal(arena.vector("u"), np.ones(4))

    def test_attach_rejects_non_arena_segment(self):
        from multiprocessing import shared_memory

        seg = shared_memory.SharedMemory(
            name="repro-bogus-ctl", create=True, size=4096
        )
        try:
            with pytest.raises(ValueError, match="not a factor arena"):
                SharedFactorArena.attach("repro-bogus")
        finally:
            seg.close()
            seg.unlink()


class TestSharedModelState:
    def test_create_attach_and_mu(self):
        state = SharedModelState.create(f=3)
        try:
            state.user.put("u", np.zeros(3), 0.5)
            state.video.put("v", np.ones(3), 0.25)
            state.mu_fold([1.0, 0.0])
            other = SharedModelState.attach(state.names)
            assert other.video.bias("v") == 0.25
            assert other.mu_state() == (1.0, 2)
            clone = pickle.loads(pickle.dumps(state))
            assert clone.user.bias("u") == 0.5
            clone.close()
            other.close()
        finally:
            state.unlink()

    def test_mismatched_f_rejected(self):
        user = SharedFactorArena(f=2)
        video = SharedFactorArena(f=3)
        try:
            with pytest.raises(ValueError, match="disagree"):
                SharedModelState(user, video)
        finally:
            user.unlink()
            video.unlink()

    def test_arena_kind_lookup(self):
        state = SharedModelState.create(f=2)
        try:
            assert state.arena("user") is state.user
            assert state.arena("video") is state.video
            with pytest.raises(KeyError):
                state.arena("nope")
        finally:
            state.unlink()
