"""Tests for action weighting (Table 1, Eq. 6)."""

import math

import pytest

from repro.config import ActionWeightConfig
from repro.core import LinearPlaytimeWeigher, LogPlaytimeWeigher, view_rate
from repro.data import ActionType, UserAction, Video
from repro.errors import DataError

VIDEO = Video("v1", "type_0", duration=1000.0)


def _playtime(view_time):
    return UserAction(0.0, "u", "v1", ActionType.PLAYTIME, view_time=view_time)


def _action(kind):
    return UserAction(0.0, "u", "v1", kind)


class TestViewRate:
    def test_basic(self):
        assert view_rate(_playtime(500.0), VIDEO) == pytest.approx(0.5)

    def test_clamped_at_one(self):
        """Replays beyond nominal duration clamp to a full view."""
        assert view_rate(_playtime(2000.0), VIDEO) == 1.0

    def test_requires_playtime_action(self):
        with pytest.raises(DataError):
            view_rate(_action(ActionType.CLICK), VIDEO)

    def test_requires_video(self):
        with pytest.raises(DataError):
            view_rate(_playtime(10.0), None)


class TestLogPlaytimeWeigher:
    @pytest.fixture
    def weigher(self):
        return LogPlaytimeWeigher()

    def test_impress_weight_zero(self, weigher):
        assert weigher.weight(_action(ActionType.IMPRESS)) == 0.0

    def test_fixed_weights_ordered_by_strength(self, weigher):
        w = weigher
        assert (
            w.weight(_action(ActionType.IMPRESS))
            < w.weight(_action(ActionType.CLICK))
            < w.weight(_action(ActionType.PLAY))
            < w.weight(_action(ActionType.COMMENT))
        )

    def test_full_view_scores_a(self, weigher):
        assert weigher.weight(_playtime(1000.0), VIDEO) == pytest.approx(2.5)

    def test_floor_view_scores_a_minus_b(self, weigher):
        assert weigher.weight(_playtime(100.0), VIDEO) == pytest.approx(1.5)

    def test_eq6_formula(self, weigher):
        """w = a + b*log10(vrate) for vrate in [0.1, 1]."""
        for vrate in (0.1, 0.2, 0.5, 0.9, 1.0):
            expected = 2.5 + 1.0 * math.log10(vrate)
            assert weigher.weight(
                _playtime(vrate * 1000.0), VIDEO
            ) == pytest.approx(expected)

    def test_below_floor_falls_back_to_play_weight(self, weigher):
        """vrate < 0.1 is an 'inefficient' signal, weighted like Play."""
        w = weigher.weight(_playtime(50.0), VIDEO)
        assert w == weigher.weight(_action(ActionType.PLAY))

    def test_monotone_in_view_rate_above_floor(self, weigher):
        weights = [
            weigher.weight(_playtime(v * 1000.0), VIDEO)
            for v in (0.1, 0.3, 0.5, 0.7, 1.0)
        ]
        assert weights == sorted(weights)

    def test_no_negative_feedback(self, weigher):
        """§3.2: stopping early never generates a negative weight."""
        assert weigher.weight(_playtime(1.0), VIDEO) > 0

    def test_custom_config(self):
        cfg = ActionWeightConfig(a=2.0, b=0.5, play=1.5)
        weigher = LogPlaytimeWeigher(cfg)
        assert weigher.weight(_playtime(1000.0), VIDEO) == pytest.approx(2.0)

    def test_playtime_without_video_raises(self, weigher):
        with pytest.raises(DataError):
            weigher.weight(_playtime(10.0))


class TestLinearPlaytimeWeigher:
    def test_same_range_as_log(self):
        """The rejected alternative is calibrated to the same [a-b, a] span."""
        linear = LinearPlaytimeWeigher()
        assert linear.weight(_playtime(100.0), VIDEO) == pytest.approx(1.5)
        assert linear.weight(_playtime(1000.0), VIDEO) == pytest.approx(2.5)

    def test_linear_below_log_in_the_middle(self):
        """log10 is concave: it rewards mid view rates more than linear."""
        log_w = LogPlaytimeWeigher()
        lin_w = LinearPlaytimeWeigher()
        mid = _playtime(400.0)  # vrate 0.4
        assert log_w.weight(mid, VIDEO) > lin_w.weight(mid, VIDEO)

    def test_below_floor_same_fallback(self):
        lin = LinearPlaytimeWeigher()
        assert lin.weight(_playtime(50.0), VIDEO) == pytest.approx(1.5)

    def test_fixed_actions_identical_to_log(self):
        log_w, lin_w = LogPlaytimeWeigher(), LinearPlaytimeWeigher()
        for kind in (ActionType.CLICK, ActionType.PLAY, ActionType.LIKE):
            assert log_w.weight(_action(kind)) == lin_w.weight(_action(kind))
