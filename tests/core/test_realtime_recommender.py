"""Tests for the end-to-end real-time recommender (Figure 1)."""

import pytest

from repro.clock import VirtualClock
from repro.config import ReproConfig
from repro.core import RealtimeRecommender, Recommendation
from repro.data import ActionType, UserAction, Video


@pytest.fixture
def recommender(small_world):
    clock = VirtualClock(0.0)
    return RealtimeRecommender(
        small_world.videos,
        users=small_world.users,
        clock=clock,
        enable_demographic=True,
    )


@pytest.fixture
def trained(recommender, small_split):
    recommender.observe_stream(small_split.train)
    recommender.clock.set(max(a.timestamp for a in small_split.train) + 1)
    return recommender


class TestObserve:
    def test_engagement_builds_history(self, small_world):
        rec = RealtimeRecommender(small_world.videos, clock=VirtualClock(0.0))
        rec.observe(UserAction(1.0, "u0", "v0", ActionType.CLICK))
        assert rec.history.recent("u0") == ["v0"]

    def test_impression_does_not_build_history(self, small_world):
        rec = RealtimeRecommender(small_world.videos, clock=VirtualClock(0.0))
        rec.observe(UserAction(1.0, "u0", "v0", ActionType.IMPRESS))
        assert rec.history.recent("u0") == []

    def test_engagement_trains_model(self, small_world):
        rec = RealtimeRecommender(small_world.videos, clock=VirtualClock(0.0))
        rec.observe(UserAction(1.0, "u0", "v0", ActionType.CLICK))
        assert rec.model.has_user("u0")
        assert rec.model.has_video("v0")

    def test_co_engagement_builds_similar_table(self, small_world):
        rec = RealtimeRecommender(small_world.videos, clock=VirtualClock(0.0))
        rec.observe(UserAction(1.0, "u0", "v0", ActionType.CLICK))
        rec.observe(UserAction(2.0, "u0", "v1", ActionType.CLICK))
        # The pair is scored and stored in both directions (its *damped*
        # relevance may be <= 0 with near-random cold vectors, so check the
        # raw table rather than the positive-filtered neighbor view).
        assert "v0" in rec.table.raw_entries("v1")
        assert "v1" in rec.table.raw_entries("v0")

    def test_stream_count(self, small_world, small_split):
        rec = RealtimeRecommender(small_world.videos, clock=VirtualClock(0.0))
        count = rec.observe_stream(small_split.train[:100])
        assert count == 100


class TestSeeds:
    def test_current_video_is_the_seed(self, trained):
        assert trained.seeds_for("u0", current_video="v5") == ["v5"]

    def test_history_seeds_when_not_watching(self, trained):
        seeds = trained.seeds_for("u0")
        assert seeds == trained.history.recent(
            "u0", trained.config.recommend.max_seeds
        )

    def test_unknown_user_no_seeds(self, trained):
        assert trained.seeds_for("stranger") == []


class TestRecommend:
    def test_returns_requested_length(self, trained):
        recs = trained.recommend("u0", n=5)
        assert len(recs) <= 5
        assert all(isinstance(r, Recommendation) for r in recs)

    def test_no_duplicates(self, trained):
        ids = trained.recommend_ids("u0", n=10)
        assert len(ids) == len(set(ids))

    def test_recommends_known_videos_only(self, trained, small_world):
        ids = trained.recommend_ids("u0", n=10)
        assert set(ids) <= set(small_world.videos)

    def test_current_video_not_recommended(self, trained):
        """Recommending what the user is already watching is useless."""
        for user in ("u0", "u1", "u2"):
            ids = trained.recommend_ids(user, current_video="v3", n=10)
            assert "v3" not in ids

    def test_mf_scores_sorted_descending_within_mf_block(self, trained):
        recs = trained.recommend("u0", n=10)
        mf_scores = [r.score for r in recs if r.score != 0.0]
        # the MF-ranked portion is ordered
        head = [
            r.score
            for r in recs[: len(mf_scores)]
            if r.score != 0.0
        ]
        assert head == sorted(head, reverse=True)

    def test_cold_user_falls_back_to_demographic(self, trained):
        """A user with no history gets the hot-video fallback, not nothing."""
        recs = trained.recommend_ids("never-seen-user", n=5)
        assert recs  # demographic fallback produced something

    def test_cold_user_without_demographic_gets_nothing(self, small_world, small_split):
        rec = RealtimeRecommender(
            small_world.videos,
            clock=VirtualClock(0.0),
            enable_demographic=False,
        )
        rec.observe_stream(small_split.train[:500])
        assert rec.recommend_ids("never-seen-user", n=5) == []

    def test_latency_recorded(self, trained):
        trained.recommend("u0", n=5)
        assert trained.request_latency.count >= 1
        assert trained.request_latency.mean > 0

    def test_exclude_watched_config(self, small_world, small_split):
        cfg = ReproConfig().with_overrides(recommend={"exclude_watched": True})
        rec = RealtimeRecommender(
            small_world.videos,
            users=small_world.users,
            config=cfg,
            clock=VirtualClock(0.0),
            enable_demographic=False,
        )
        rec.observe_stream(small_split.train)
        now = max(a.timestamp for a in small_split.train)
        for user in list(small_world.users)[:10]:
            watched = rec.history.watched(user)
            assert not set(rec.recommend_ids(user, n=10, now=now)) & watched

    def test_recommendations_lean_toward_user_taste(
        self, trained, small_world
    ):
        """Across users, mean true affinity of recommended videos beats the
        catalogue average — the system personalises."""
        import numpy as np

        gains = []
        for user in list(small_world.users)[:20]:
            ids = trained.recommend_ids(user, n=10)
            if len(ids) < 5:
                continue
            rec_aff = np.mean([small_world.affinity(user, v) for v in ids])
            all_aff = np.mean(
                [small_world.affinity(user, v) for v in small_world.videos]
            )
            gains.append(rec_aff - all_aff)
        assert np.mean(gains) > 0


class TestDemographicIntegration:
    def test_demographic_slots_inject_hot_videos(self, small_world, small_split):
        cfg = ReproConfig().with_overrides(recommend={"demographic_slots": 0.5})
        rec = RealtimeRecommender(
            small_world.videos,
            users=small_world.users,
            config=cfg,
            clock=VirtualClock(0.0),
        )
        rec.observe_stream(small_split.train)
        now = max(a.timestamp for a in small_split.train)
        user = next(iter(small_world.users))
        merged = rec.recommend_ids(user, n=10, now=now)
        db_list = rec.demographic.recommend(user, 10, now=now)
        assert set(merged) & set(db_list)
