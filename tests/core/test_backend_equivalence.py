"""Arena and KV parameter layouts must be byte-for-byte interchangeable.

Both backends of :class:`~repro.core.mf.MFModel` run the identical
float64 arithmetic over identically initialised vectors, so after the
same seeded action stream every prediction — scalar, batched, and the
resulting top-N ordering — must match exactly, not approximately.
Checkpoints and ``.npz`` saves written under one layout must restore into
the other (layout migration), and the micro-batched training paths must
reproduce the sequential ones bit-for-bit.
"""

import numpy as np
import pytest

from repro.clock import VirtualClock
from repro.config import MFConfig, ReproConfig
from repro.core import MFModel, OnlineTrainer, RealtimeRecommender
from repro.kvstore import InMemoryKVStore
from repro.reliability import CheckpointManager

BACKENDS = ("arena", "kv")


def _trained_model(backend, actions, videos):
    store = InMemoryKVStore()
    model = MFModel(MFConfig(backend=backend), store=store)
    trainer = OnlineTrainer(model, videos=videos)
    trainer.process_stream(actions)
    return model, trainer, store


@pytest.fixture(scope="module")
def trained_pair(small_world, small_split):
    actions = small_split.train[:400]
    arena = _trained_model("arena", actions, small_world.videos)
    kv = _trained_model("kv", actions, small_world.videos)
    return arena, kv


class TestPredictionEquivalence:
    def test_same_entities_learned(self, trained_pair):
        (arena, _, _), (kv, _, _) = trained_pair
        assert arena.n_users == kv.n_users
        assert arena.n_videos == kv.n_videos
        assert sorted(arena.known_videos()) == sorted(kv.known_videos())
        assert arena.mu == kv.mu

    def test_scalar_predict_identical(self, trained_pair, small_world):
        (arena, _, _), (kv, _, _) = trained_pair
        videos = sorted(arena.known_videos())[:20]
        for user_id in sorted(small_world.users)[:10]:
            for video_id in videos:
                assert arena.predict(user_id, video_id) == kv.predict(
                    user_id, video_id
                )

    def test_predict_many_identical(self, trained_pair, small_world):
        (arena, _, _), (kv, _, _) = trained_pair
        videos = sorted(arena.known_videos())
        for user_id in sorted(small_world.users)[:10]:
            a = arena.predict_many(user_id, videos)
            b = kv.predict_many(user_id, videos)
            np.testing.assert_array_equal(a, b)

    def test_predict_many_matches_scalar_predict(self, trained_pair):
        # Same float op order as the scalar loop; only the BLAS
        # accumulation order inside the dot product may differ, so the
        # tolerance is a few ULP rather than exact.
        (arena, trainer, _), _ = trained_pair
        videos = sorted(arena.known_videos()) + ["never-seen"]
        user_id = next(iter(sorted(arena._params.ids("user"))))
        batched = arena.predict_many(user_id, videos)
        scalar = np.array([arena.predict(user_id, v) for v in videos])
        np.testing.assert_allclose(batched, scalar, rtol=1e-14, atol=0.0)

    def test_top_n_identical(self, trained_pair, small_world):
        (arena, _, _), (kv, _, _) = trained_pair
        videos = sorted(arena.known_videos())
        for user_id in sorted(small_world.users)[:10]:
            a = arena.predict_many(user_id, videos)
            b = kv.predict_many(user_id, videos)
            rank = lambda s: sorted(  # noqa: E731
                range(len(videos)), key=lambda i: (-s[i], videos[i])
            )
            assert rank(a)[:10] == rank(b)[:10]


class TestBatchTrainingEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_process_batch_matches_sequential(
        self, backend, small_world, small_split
    ):
        actions = small_split.train[:200]
        seq_model, seq_trainer, _ = _trained_model(
            backend, actions, small_world.videos
        )
        batch_model = MFModel(
            MFConfig(backend=backend), store=InMemoryKVStore()
        )
        batch_trainer = OnlineTrainer(batch_model, videos=small_world.videos)
        for start in range(0, len(actions), 32):
            batch_trainer.process_batch(list(actions[start : start + 32]))
        assert batch_model.mu == seq_model.mu
        assert (
            batch_trainer.stats.updated == seq_trainer.stats.updated
        )
        assert batch_trainer.stats.seen == seq_trainer.stats.seen
        videos = sorted(seq_model.known_videos())
        for user_id in sorted(small_world.users)[:10]:
            np.testing.assert_array_equal(
                batch_model.predict_many(user_id, videos),
                seq_model.predict_many(user_id, videos),
            )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_sgd_step_many_matches_loop(self, backend):
        def fresh():
            return MFModel(MFConfig(backend=backend), store=InMemoryKVStore())

        steps = [
            ("u1", "v1", 1.0, 0.01),
            ("u1", "v2", 2.0, 0.02),
            ("u2", "v1", 1.5, 0.01),
            ("u1", "v1", 3.0, 0.03),
        ]
        loop = fresh()
        loop_updates = [loop.sgd_step(*step) for step in steps]
        batched = fresh()
        batch_updates = batched.sgd_step_many(steps)
        for a, b in zip(loop_updates, batch_updates):
            assert a.error == b.error
            np.testing.assert_array_equal(a.x_u, b.x_u)
            np.testing.assert_array_equal(a.y_i, b.y_i)
            assert a.b_u == b.b_u
            assert a.b_i == b.b_i
        for vid in ("v1", "v2"):
            np.testing.assert_array_equal(
                loop.video_vector(vid), batched.video_vector(vid)
            )


class TestCrossBackendPersistence:
    @pytest.mark.parametrize("src,dst", [("arena", "kv"), ("kv", "arena")])
    def test_checkpoint_restores_into_other_backend(
        self, src, dst, small_world, small_split, tmp_path
    ):
        actions = small_split.train[:300]
        src_model, _, src_store = _trained_model(
            src, actions, small_world.videos
        )
        manager = CheckpointManager(tmp_path / "ckpts", fsync=False)
        info = manager.create(
            src_store, metadata={"mf_backend": src}
        )
        assert info.metadata["mf_backend"] == src

        dst_store = InMemoryKVStore()
        manager.restore(info, dst_store)
        # Construct AFTER restore: the new model migrates the layout.
        dst_model = MFModel(MFConfig(backend=dst), store=dst_store)
        assert dst_model.mu == src_model.mu
        assert dst_model.n_users == src_model.n_users
        videos = sorted(src_model.known_videos())
        assert sorted(dst_model.known_videos()) == videos
        for user_id in sorted(small_world.users)[:10]:
            np.testing.assert_array_equal(
                dst_model.predict_many(user_id, videos),
                src_model.predict_many(user_id, videos),
            )

    @pytest.mark.parametrize("src,dst", [("arena", "kv"), ("kv", "arena")])
    def test_npz_save_load_across_backends(
        self, src, dst, small_world, small_split, tmp_path
    ):
        actions = small_split.train[:200]
        src_model, _, _ = _trained_model(src, actions, small_world.videos)
        path = str(tmp_path / "model.npz")
        src_model.save(path)
        dst_model = MFModel(MFConfig(backend=dst), store=InMemoryKVStore())
        dst_model.load(path)
        assert dst_model.mu == src_model.mu
        videos = sorted(src_model.known_videos())
        for user_id in ("u0", "u1", "u2"):
            np.testing.assert_array_equal(
                dst_model.predict_many(user_id, videos),
                src_model.predict_many(user_id, videos),
            )


class TestRecommenderEquivalence:
    def test_end_to_end_recommendations_identical(
        self, small_world, small_split
    ):
        def build(backend):
            rec = RealtimeRecommender(
                small_world.videos,
                users=small_world.users,
                config=ReproConfig().with_overrides(mf={"backend": backend}),
                clock=VirtualClock(0.0),
                enable_demographic=True,
            )
            rec.observe_stream(small_split.train[:500])
            return rec

        arena_rec = build("arena")
        kv_rec = build("kv")
        now = max(a.timestamp for a in small_split.train[:500]) + 1.0
        for user_id in sorted(small_world.users)[:15]:
            assert arena_rec.recommend_ids(
                user_id, n=10, now=now
            ) == kv_rec.recommend_ids(user_id, n=10, now=now)
