"""Tests for candidate selection (§4.1)."""

import pytest

from repro.clock import VirtualClock
from repro.config import MFConfig, RecommendConfig, SimilarityConfig
from repro.core import CandidateSelector, MFModel, SimilarVideoTable
from repro.data import Video


@pytest.fixture
def table():
    videos = {
        f"v{i}": Video(f"v{i}", "t", duration=100.0) for i in range(10)
    }
    model = MFModel(MFConfig(f=4, init_scale=0.5, seed=2))
    for vid in videos:
        model.ensure_video(vid)
    table = SimilarVideoTable(
        videos,
        model,
        config=SimilarityConfig(table_size=10, xi=1000.0, candidate_pool=10),
        clock=VirtualClock(0.0),
    )
    # Build a dense-ish similarity graph.
    for i in range(10):
        for j in range(i + 1, 10):
            table.offer_pair(f"v{i}", f"v{j}", now=0.0)
    return table


class TestSelect:
    def test_candidates_come_from_seed_neighbors(self, table):
        selector = CandidateSelector(table, RecommendConfig())
        candidates = selector.select(["v0"], now=0.0)
        neighbor_ids = {vid for vid, _ in table.neighbors("v0", now=0.0)}
        assert {c.video_id for c in candidates} <= neighbor_ids

    def test_seeds_never_candidates(self, table):
        selector = CandidateSelector(table, RecommendConfig())
        candidates = selector.select(["v0", "v1"], now=0.0)
        ids = {c.video_id for c in candidates}
        assert "v0" not in ids
        assert "v1" not in ids

    def test_excluded_videos_filtered(self, table):
        selector = CandidateSelector(table, RecommendConfig())
        candidates = selector.select(["v0"], exclude={"v1", "v2"}, now=0.0)
        ids = {c.video_id for c in candidates}
        assert not ids & {"v1", "v2"}

    def test_dedup_keeps_best_similarity(self, table):
        selector = CandidateSelector(table, RecommendConfig())
        candidates = selector.select(["v0", "v1"], now=0.0)
        ids = [c.video_id for c in candidates]
        assert len(ids) == len(set(ids))
        for c in candidates:
            # the kept similarity is the max over supporting seeds
            sims = []
            for seed in ("v0", "v1"):
                sims += [
                    s
                    for vid, s in table.neighbors(seed, now=0.0)
                    if vid == c.video_id
                ]
            assert c.similarity == pytest.approx(max(sims))

    def test_sorted_by_similarity(self, table):
        selector = CandidateSelector(table, RecommendConfig())
        candidates = selector.select(["v0"], now=0.0)
        sims = [c.similarity for c in candidates]
        assert sims == sorted(sims, reverse=True)

    def test_max_candidates_cap(self, table):
        selector = CandidateSelector(
            table, RecommendConfig(top_n=2, max_candidates=3)
        )
        assert len(selector.select(["v0", "v5"], now=0.0)) <= 3

    def test_max_seeds_cap(self, table):
        """Only the first max_seeds seeds are expanded."""
        selector = CandidateSelector(
            table, RecommendConfig(max_seeds=1, top_n=1, max_candidates=100)
        )
        only_first = selector.select(["v0", "v1"], now=0.0)
        from_first = selector.select(["v0"], now=0.0)
        assert {c.video_id for c in only_first} == {
            c.video_id for c in from_first if c.video_id != "v1"
        }

    def test_no_seeds_no_candidates(self, table):
        selector = CandidateSelector(table, RecommendConfig())
        assert selector.select([], now=0.0) == []

    def test_unknown_seed_yields_nothing(self, table):
        selector = CandidateSelector(table, RecommendConfig())
        assert selector.select(["ghost"], now=0.0) == []
