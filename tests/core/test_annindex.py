"""Tests for the LSH-bucketed ANN index (DESIGN.md "Candidate retrieval
index"): hashing, auto-sizing, incremental maintenance, partition
pruning, and the rebuild-from-checkpoint equivalence contract."""

import numpy as np
import pytest

from repro.config import MFConfig, RetrievalConfig
from repro.core import (
    AnnIndex,
    MFModel,
    RandomHyperplanes,
    auto_band_bits,
    top_n_by_score,
)
from repro.data import Video


def _catalog(n, f=8, kinds=("music", "news", "sport"), seed=3):
    rng = np.random.default_rng(seed)
    ids = [f"v{i:04d}" for i in range(n)]
    videos = {
        vid: Video(vid, kinds[i % len(kinds)], duration=100.0)
        for i, vid in enumerate(ids)
    }
    vectors = rng.standard_normal((n, f)) * 0.3
    biases = rng.standard_normal(n) * 0.05
    return ids, videos, vectors, biases


class TestTopNByScore:
    def test_matches_full_sort_reference(self):
        rng = np.random.default_rng(11)
        ids = [f"v{i}" for i in range(200)]
        # Quantized scores force plenty of exact ties.
        scores = np.round(rng.standard_normal(200), 1)
        got = top_n_by_score(ids, scores, 25)
        ref = sorted(zip(ids, scores), key=lambda p: (-p[1], p[0]))[:25]
        assert [(v, pytest.approx(s)) for v, s in ref] == got

    def test_ties_break_by_ascending_id(self):
        ids = ["vb", "va", "vd", "vc"]
        scores = np.array([1.0, 1.0, 1.0, 2.0])
        assert top_n_by_score(ids, scores, 3) == [
            ("vc", 2.0),
            ("va", 1.0),
            ("vb", 1.0),
        ]

    def test_short_input_returns_everything_sorted(self):
        ids = ["v1", "v0"]
        scores = np.array([0.5, 0.5])
        assert top_n_by_score(ids, scores, 10) == [("v0", 0.5), ("v1", 0.5)]

    def test_empty_and_nonpositive_n(self):
        assert top_n_by_score([], np.array([]), 5) == []
        assert top_n_by_score(["v0"], np.array([1.0]), 0) == []


class TestAutoBandBits:
    def test_grows_with_catalog_size(self):
        cfg = RetrievalConfig()
        small = auto_band_bits(1_000, 1, cfg)
        large = auto_band_bits(1_000_000, 1, cfg)
        assert small < large

    def test_partitions_shrink_the_bands(self):
        cfg = RetrievalConfig()
        assert auto_band_bits(100_000, 8, cfg) <= auto_band_bits(
            100_000, 1, cfg
        )

    def test_clamped_to_configured_range(self):
        cfg = RetrievalConfig()
        assert auto_band_bits(1, 1, cfg) == cfg.min_band_bits
        assert auto_band_bits(10**12, 1, cfg) == cfg.max_band_bits

    def test_explicit_band_bits_wins(self):
        cfg = RetrievalConfig(band_bits=7)
        assert auto_band_bits(10**9, 4, cfg) == 7


class TestRandomHyperplanes:
    def test_deterministic_in_seed(self):
        a = RandomHyperplanes(8, tables=4, band_bits=6, seed=9)
        b = RandomHyperplanes(8, tables=4, band_bits=6, seed=9)
        vecs = np.random.default_rng(0).standard_normal((10, 8))
        assert np.array_equal(a.band_values(vecs), b.band_values(vecs))

    def test_band_values_shape_and_range(self):
        fam = RandomHyperplanes(5, tables=3, band_bits=4, seed=1)
        bands = fam.band_values(np.ones((7, 5)))
        assert bands.shape == (7, 3)
        assert (bands < 16).all()

    def test_sign_signatures_are_scale_invariant(self):
        fam = RandomHyperplanes(6, tables=2, band_bits=8, seed=2)
        v = np.random.default_rng(3).standard_normal(6)
        assert np.array_equal(
            fam.band_values(v[None, :]), fam.band_values(v[None, :] * 37.0)
        )

    def test_validation(self):
        with pytest.raises(ValueError, match="band_bits"):
            RandomHyperplanes(4, tables=2, band_bits=64, seed=0)
        with pytest.raises(ValueError, match="tables"):
            RandomHyperplanes(4, tables=0, band_bits=8, seed=0)
        with pytest.raises(ValueError, match="dim"):
            RandomHyperplanes(0, tables=2, band_bits=8, seed=0)


class TestBulkLoadAndQuery:
    def test_self_retrieval(self):
        ids, videos, vectors, biases = _catalog(400)
        idx = AnnIndex(8, videos=videos)
        idx.bulk_load(ids, vectors, biases)
        # Each indexed vector must retrieve itself (its exact buckets are
        # always probed first).
        for i in (0, 57, 399):
            assert ids[i] in idx.query_item(vectors[i], 10)

    def test_shortlist_subset_of_catalog(self):
        ids, videos, vectors, biases = _catalog(300)
        idx = AnnIndex(8, videos=videos)
        idx.bulk_load(ids, vectors, biases)
        rng = np.random.default_rng(5)
        shortlist = idx.query_user(rng.standard_normal(8), 20)
        assert set(shortlist) <= set(ids)
        assert shortlist == sorted(shortlist)

    def test_exclude_is_respected(self):
        ids, videos, vectors, biases = _catalog(100)
        idx = AnnIndex(8, videos=videos)
        idx.bulk_load(ids, vectors, biases)
        blocked = set(ids[:50])
        shortlist = idx.query_item(vectors[0], 20, exclude=blocked)
        assert not blocked & set(shortlist)

    def test_build_report(self):
        ids, videos, vectors, biases = _catalog(150)
        idx = AnnIndex(8, videos=videos)
        report = idx.bulk_load(ids, vectors, biases)
        assert report["indexed"] == 150
        assert report["partitions"] == 4  # 3 kinds + unpartitioned slot
        assert report["build_seconds"] >= 0.0
        assert report["bias_scale"] > 0.0
        assert len(idx) == 150

    def test_pinned_bias_scale_is_honoured(self):
        ids, videos, vectors, biases = _catalog(60)
        idx = AnnIndex(8, config=RetrievalConfig(bias_scale=2.5))
        report = idx.bulk_load(ids, vectors, biases)
        assert report["bias_scale"] == 2.5

    def test_row_queries_match_id_queries(self):
        ids, videos, vectors, biases = _catalog(250)
        idx = AnnIndex(8, videos=videos)
        idx.bulk_load(ids, vectors, biases)
        x = np.random.default_rng(8).standard_normal(8)
        rows = idx.query_user_rows(x, 15)
        assert sorted(idx.ids_for_rows(rows)) == idx.query_user(x, 15)

    def test_duplicate_ids_rejected(self):
        idx = AnnIndex(4)
        with pytest.raises(ValueError, match="duplicate"):
            idx.bulk_load(["v0", "v0"], np.zeros((2, 4)))

    def test_shape_mismatch_rejected(self):
        idx = AnnIndex(4)
        with pytest.raises(ValueError, match="shape"):
            idx.bulk_load(["v0"], np.zeros((1, 5)))

    def test_bucket_occupancy_histogram(self):
        ids, videos, vectors, biases = _catalog(200)
        idx = AnnIndex(8, videos=videos)
        idx.bulk_load(ids, vectors, biases)
        occ = idx.bucket_occupancy()
        assert occ["buckets"] > 0
        assert occ["max"] >= occ["p90"] >= occ["p50"] >= 1
        assert occ["mean"] > 0.0


class TestIncrementalMaintenance:
    def _index(self, check_every=2):
        _, videos, _, _ = _catalog(10)
        return AnnIndex(
            4,
            videos=videos,
            config=RetrievalConfig(check_every=check_every, min_band_bits=6),
        )

    def test_upsert_outcomes(self):
        idx = self._index(check_every=2)
        v = np.array([0.5, -0.2, 0.1, 0.3])
        assert idx.upsert("v0001", v) == "fresh"
        # Drift check not due yet (every 2nd upsert).
        assert idx.upsert("v0001", v) == "skipped"
        # Due, signature unchanged.
        assert idx.upsert("v0001", v) == "checked"
        assert idx.upsert("v0001", v) == "skipped"
        # Due again, vector flipped -> signature must drift.
        assert idx.upsert("v0001", -v) == "rehashed"

    def test_fresh_video_is_queryable(self):
        idx = self._index()
        v = np.array([1.0, 0.0, 0.0, 0.0])
        idx.upsert("v0003", v)
        assert "v0003" in idx
        assert "v0003" in idx.query_item(v, 5)

    def test_evict_removes_from_results(self):
        idx = self._index()
        v = np.array([0.0, 1.0, 0.0, 0.0])
        idx.upsert("v0004", v)
        assert idx.evict("v0004") is True
        assert "v0004" not in idx
        assert "v0004" not in idx.query_item(v, 5)
        assert idx.evict("v0004") is False  # already gone

    def test_rehash_keeps_video_findable_at_new_signature(self):
        idx = self._index(check_every=1)
        v = np.array([0.8, 0.1, -0.3, 0.2])
        idx.upsert("v0005", v)
        idx.upsert("v0005", -v)  # every upsert checks; flip rehashes
        assert "v0005" in idx.query_item(-v, 5)

    def test_stats_keys(self):
        idx = self._index()
        idx.upsert("v0000", np.ones(4))
        stats = idx.stats()
        assert stats["indexed"] == 1
        assert stats["tables"] == idx.tables
        assert stats["stale_entries"] >= 0
        assert stats["bias_scale"] > 0


class TestPartitions:
    def test_allowed_partitions_learning(self):
        ids, videos, vectors, biases = _catalog(30)
        idx = AnnIndex(8, videos=videos)
        idx.bulk_load(ids, vectors, biases)
        # Unknown group and the global group never prune.
        assert idx.allowed_partitions("global") is None
        assert idx.allowed_partitions("f|18-25") is None
        idx.observe_group("f|18-25", ids[0])  # ids[0] is "music"
        assert idx.allowed_partitions("f|18-25") == frozenset({"music"})

    def test_partition_restriction_filters_shortlist(self):
        ids, videos, vectors, biases = _catalog(300)
        idx = AnnIndex(8, videos=videos)
        idx.bulk_load(ids, vectors, biases)
        rng = np.random.default_rng(7)
        for _ in range(5):
            shortlist = idx.query_user(
                rng.standard_normal(8), 20, allowed_partitions=["news"]
            )
            assert shortlist  # news is a third of the catalog
            assert all(videos[vid].kind == "news" for vid in shortlist)

    def test_partitioning_disabled_uses_single_partition(self):
        ids, videos, vectors, biases = _catalog(50)
        idx = AnnIndex(
            8, videos=videos, config=RetrievalConfig(partition_by_kind=False)
        )
        report = idx.bulk_load(ids, vectors, biases)
        assert report["partitions"] == 1


class TestRebuildEquivalence:
    def _trained_model(self, f=6):
        model = MFModel(MFConfig(f=f, seed=4))
        model.observe_rating(0.0)
        model.observe_rating(1.0)
        rng = np.random.default_rng(12)
        for _ in range(300):
            u = f"u{rng.integers(0, 20)}"
            v = f"v{rng.integers(0, 40):04d}"
            model.sgd_step(u, v, float(rng.integers(0, 2)), eta=0.05)
        return model

    def test_checkpoint_restored_index_serves_identical_shortlists(
        self, tmp_path
    ):
        model = self._trained_model()
        fresh = AnnIndex(6)
        fresh.build_from_model(model)

        path = tmp_path / "model.npz"
        model.save(str(path))
        restored_model = MFModel(MFConfig(f=6))
        restored_model.load(str(path))
        restored = AnnIndex(6)
        restored.build_from_model(restored_model)

        assert fresh.indexed_ids() == restored.indexed_ids()
        rng = np.random.default_rng(99)
        for _ in range(10):
            x = rng.standard_normal(6)
            assert fresh.query_user(x, 10) == restored.query_user(x, 10)
            assert fresh.query_item(x, 10) == restored.query_item(x, 10)

    def test_rebuild_reports_cost_and_resets_stale(self):
        model = self._trained_model()
        idx = AnnIndex(6, config=RetrievalConfig(check_every=1))
        idx.build_from_model(model)
        # Dirty the index, then rebuild: stale entries are gone.
        flipped = -np.asarray(model.video_vector("v0001"))
        idx.upsert("v0001", flipped)
        report = idx.rebuild(model)
        assert report["indexed"] == len(model.known_videos())
        assert report["build_seconds"] >= 0.0
        assert idx.stats()["stale_entries"] == 0
