"""Tests for Algorithm 1 — the adjustable online updating strategy."""

import pytest

from repro.config import OnlineConfig
from repro.core import (
    BINARY_MODEL,
    COMBINE_MODEL,
    CONF_MODEL,
    MFModel,
    OnlineTrainer,
)
from repro.data import ActionType, UserAction, Video

VIDEOS = {"v1": Video("v1", "t0", duration=1000.0)}


def _trainer(variant=COMBINE_MODEL, **online):
    cfg = OnlineConfig(**online) if online else OnlineConfig()
    return OnlineTrainer(MFModel(), videos=VIDEOS, variant=variant, config=cfg)


def _click(user="u1", video="v1", ts=0.0):
    return UserAction(ts, user, video, ActionType.CLICK)


class TestLearningRate:
    def test_eq8_adjustable(self):
        """eta = eta0 + alpha * w for the adjustable CombineModel."""
        trainer = _trainer(COMBINE_MODEL, eta0=0.01, alpha=0.02)
        assert trainer.learning_rate(0.0) == pytest.approx(0.01)
        assert trainer.learning_rate(2.5) == pytest.approx(0.06)

    def test_fixed_for_binary_and_conf(self):
        for variant in (BINARY_MODEL, CONF_MODEL):
            trainer = _trainer(variant, eta0=0.01, alpha=0.02)
            assert trainer.learning_rate(3.5) == pytest.approx(0.01)

    def test_clamped_at_max(self):
        trainer = _trainer(COMBINE_MODEL, eta0=0.01, alpha=1.0, max_eta=0.05)
        assert trainer.learning_rate(100.0) == 0.05


class TestProcessing:
    def test_impression_never_updates_model(self):
        trainer = _trainer()
        result = trainer.process(
            UserAction(0.0, "u1", "v1", ActionType.IMPRESS)
        )
        assert result is None
        assert not trainer.model.has_user("u1")
        assert trainer.stats.skipped_zero == 1

    def test_impression_still_counts_into_mu(self):
        trainer = _trainer()
        trainer.process(UserAction(0.0, "u1", "v1", ActionType.IMPRESS))
        trainer.process(_click())
        assert trainer.model.mu == pytest.approx(0.5)

    def test_engagement_updates_model(self):
        trainer = _trainer()
        update = trainer.process(_click())
        assert update is not None
        assert trainer.model.has_user("u1")
        assert trainer.model.has_video("v1")
        assert trainer.stats.updated == 1

    def test_new_entities_initialised_on_first_action(self):
        """Algorithm 1 lines 3-8."""
        trainer = _trainer()
        trainer.process(_click(user="brand-new", video="v1"))
        assert trainer.model.user_vector("brand-new") is not None

    def test_higher_confidence_larger_step(self):
        """The same action sequence moves the model more when the action
        weights are higher (Combine variant)."""
        results = {}
        for kind in (ActionType.CLICK, ActionType.LIKE):
            trainer = _trainer(COMBINE_MODEL, eta0=0.01, alpha=0.05)
            update = trainer.process(UserAction(0.0, "u1", "v1", kind))
            results[kind] = update.eta
        assert results[ActionType.LIKE] > results[ActionType.CLICK]

    def test_conf_variant_uses_weight_as_rating(self):
        trainer = _trainer(CONF_MODEL)
        play = UserAction(0.0, "u1", "v1", ActionType.PLAY)
        feedback = trainer.feedback_for(play)
        assert feedback.rating == pytest.approx(1.5)

    def test_binary_variant_rating_is_one(self):
        trainer = _trainer(BINARY_MODEL)
        play = UserAction(0.0, "u1", "v1", ActionType.PLAY)
        assert trainer.feedback_for(play).rating == 1.0

    def test_playtime_with_unknown_video_skipped(self):
        trainer = _trainer()
        bad = UserAction(0.0, "u1", "ghost", ActionType.PLAYTIME, view_time=10)
        assert trainer.process(bad) is None
        assert trainer.stats.skipped_invalid == 1
        assert not trainer.model.has_user("u1")

    def test_is_playtime_capable(self):
        trainer = _trainer()
        good = UserAction(0.0, "u", "v1", ActionType.PLAYTIME, view_time=10)
        bad = UserAction(0.0, "u", "nope", ActionType.PLAYTIME, view_time=10)
        assert trainer.is_playtime_capable(good)
        assert not trainer.is_playtime_capable(bad)
        assert trainer.is_playtime_capable(_click(video="nope"))

    def test_process_stream_counts_updates(self):
        trainer = _trainer()
        stream = [
            UserAction(0.0, "u1", "v1", ActionType.IMPRESS),
            _click(ts=1.0),
            _click(user="u2", ts=2.0),
        ]
        assert trainer.process_stream(stream) == 2
        assert trainer.stats.seen == 3

    def test_stats_mean_abs_error(self):
        trainer = _trainer()
        trainer.process(_click())
        assert trainer.stats.mean_abs_error > 0

    def test_repeated_engagement_raises_prediction(self):
        """Single-step updating: repeated positive actions push the pair's
        prediction up, with impressions keeping mu below 1."""
        trainer = _trainer(BINARY_MODEL, eta0=0.05)
        trainer.process(UserAction(0.0, "u1", "v1", ActionType.IMPRESS))
        trainer.process(_click(ts=0.5))
        first = trainer.model.predict("u1", "v1")
        for i in range(5):
            trainer.process(UserAction(float(i), "u1", "v1", ActionType.IMPRESS))
            trainer.process(_click(ts=float(i) + 0.5))
        assert trainer.model.predict("u1", "v1") > first
