"""Tests for the incremental item-based CF baseline (ref [17])."""

import math

import pytest

from repro.baselines import ItemCFRecommender
from repro.data import ActionType, UserAction, Video

VIDEOS = {f"v{i}": Video(f"v{i}", "t", duration=1000.0) for i in range(10)}


def _click(user, video, ts=0.0):
    return UserAction(ts, user, video, ActionType.CLICK)


class TestIncrementalSimilarity:
    def test_cooccurrence_creates_similarity(self):
        cf = ItemCFRecommender(videos=VIDEOS)
        cf.observe(_click("u1", "v1"))
        cf.observe(_click("u1", "v2"))
        assert cf.similarity("v1", "v2") > 0

    def test_no_cooccurrence_zero_similarity(self):
        cf = ItemCFRecommender(videos=VIDEOS)
        cf.observe(_click("u1", "v1"))
        cf.observe(_click("u2", "v2"))
        assert cf.similarity("v1", "v2") == 0.0

    def test_self_similarity_is_one(self):
        cf = ItemCFRecommender(videos=VIDEOS)
        assert cf.similarity("v1", "v1") == 1.0

    def test_cosine_formula_single_user(self):
        """One user rating v1 with r1 and v2 with r2: cos = r1*r2/(r1*r2) = 1."""
        cf = ItemCFRecommender(videos=VIDEOS)
        cf.observe(_click("u1", "v1"))  # click weight 0.5
        cf.observe(UserAction(1.0, "u1", "v2", ActionType.PLAY))  # 1.5
        assert cf.similarity("v1", "v2") == pytest.approx(1.0)

    def test_incremental_equals_recomputed(self):
        """Exactness: incremental cosine == cosine from final ratings."""
        cf = ItemCFRecommender(videos=VIDEOS)
        stream = [
            ("u1", "v1"), ("u1", "v2"), ("u2", "v1"), ("u2", "v3"),
            ("u3", "v2"), ("u3", "v1"), ("u1", "v1"),
        ]
        for i, (u, v) in enumerate(stream):
            cf.observe(_click(u, v, float(i)))
        ratings = cf._ratings
        for a, b in (("v1", "v2"), ("v1", "v3"), ("v2", "v3")):
            dot = sum(
                ratings[u].get(a, 0.0) * ratings[u].get(b, 0.0)
                for u in ratings
            )
            norm = math.sqrt(
                sum(r.get(a, 0.0) ** 2 for r in ratings.values())
                * sum(r.get(b, 0.0) ** 2 for r in ratings.values())
            )
            expected = dot / norm if norm else 0.0
            assert cf.similarity(a, b) == pytest.approx(expected)

    def test_confidence_as_rating(self):
        """This model uses the action weight as the rating — the scheme that
        works for item CF (§3.2) even though it breaks MF."""
        cf = ItemCFRecommender(videos=VIDEOS)
        cf.observe(UserAction(0.0, "u1", "v1", ActionType.LIKE))
        assert cf._ratings["u1"]["v1"] == pytest.approx(3.0)

    def test_impressions_ignored(self):
        cf = ItemCFRecommender(videos=VIDEOS)
        cf.observe(UserAction(0.0, "u1", "v1", ActionType.IMPRESS))
        assert "u1" not in cf._ratings

    def test_playtime_unknown_video_skipped(self):
        cf = ItemCFRecommender(videos=VIDEOS)
        cf.observe(
            UserAction(0.0, "u1", "ghost", ActionType.PLAYTIME, view_time=10)
        )
        assert "u1" not in cf._ratings

    def test_similar_videos_sorted(self):
        cf = ItemCFRecommender(videos=VIDEOS)
        for u, vids in [("u1", ["v1", "v2"]), ("u2", ["v1", "v2"]),
                        ("u3", ["v1", "v3"])]:
            for i, v in enumerate(vids):
                cf.observe(_click(u, v, float(i)))
        sims = cf.similar_videos("v1", k=5)
        values = [s for _, s in sims]
        assert values == sorted(values, reverse=True)
        assert sims[0][0] == "v2"


class TestRecommendation:
    def _small_world(self):
        cf = ItemCFRecommender(videos=VIDEOS, exclude_watched=True)
        # v1 and v2 co-watched by many; v3 with v1 by one user
        for i in range(4):
            cf.observe(_click(f"u{i}", "v1", 0.0))
            cf.observe(_click(f"u{i}", "v2", 1.0))
        cf.observe(_click("u9", "v1", 0.0))
        cf.observe(_click("u9", "v3", 1.0))
        return cf

    def test_recommends_strongest_cooccurrence(self):
        cf = self._small_world()
        cf.observe(_click("me", "v1", 5.0))
        recs = cf.recommend_ids("me", n=2)
        assert recs[0] == "v2"

    def test_current_video_seed(self):
        cf = self._small_world()
        recs = cf.recommend_ids("anyone", current_video="v1", n=2)
        assert "v2" in recs

    def test_watched_excluded(self):
        cf = self._small_world()
        cf.observe(_click("me", "v1", 5.0))
        cf.observe(_click("me", "v2", 6.0))
        assert "v2" not in cf.recommend_ids("me", n=3)

    def test_unknown_user_nothing(self):
        cf = self._small_world()
        assert cf.recommend_ids("stranger", n=3) == []

    def test_max_user_items_caps_profiles(self):
        cf = ItemCFRecommender(videos=VIDEOS, max_user_items=2)
        for i, v in enumerate(["v1", "v2", "v3"]):
            cf.observe(_click("u", v, float(i)))
        assert len(cf._ratings["u"]) == 2
