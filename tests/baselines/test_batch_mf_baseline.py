"""Tests for the interval-retrained batch MF baseline."""

import pytest

from repro.baselines import BatchMFRecommender
from repro.config import MFConfig
from repro.data import ActionType, UserAction, Video

VIDEOS = {f"v{i}": Video(f"v{i}", "t", duration=1000.0) for i in range(8)}


def _click(user, video, ts=0.0):
    return UserAction(ts, user, video, ActionType.CLICK)


@pytest.fixture
def batch():
    return BatchMFRecommender(
        videos=VIDEOS, mf_config=MFConfig(f=4, seed=1), epochs=3
    )


class TestAccumulation:
    def test_untrained_recommends_nothing(self, batch):
        batch.observe(_click("u", "v1"))
        assert batch.recommend_ids("u", n=5) == []

    def test_retrain_builds_model(self):
        batch = BatchMFRecommender(
            videos=VIDEOS,
            mf_config=MFConfig(f=4, seed=1),
            epochs=3,
            exclude_watched=False,
        )
        for u in ("u1", "u2"):
            for v in ("v1", "v2"):
                batch.observe(_click(u, v))
        batch.retrain(now=100.0)
        assert batch.trained_at == 100.0
        assert batch.model.has_user("u1")
        assert batch.recommend_ids("u1", n=2)

    def test_staleness_between_retrains(self, batch):
        """The paper's critique of offline models: new users are invisible
        until the next batch run."""
        batch.observe(_click("u1", "v1"))
        batch.observe(_click("u1", "v2"))
        batch.retrain(now=1.0)
        batch.observe(_click("late-user", "v1"))
        assert batch.recommend_ids("late-user", n=5) == []
        batch.retrain(now=2.0)
        assert batch.model.has_user("late-user")

    def test_binary_ratings_per_eq7(self, batch):
        batch.observe(UserAction(0.0, "u", "v1", ActionType.LIKE))
        batch.observe(_click("u", "v1", ts=1.0))
        ratings = batch.ratings_by_user()
        assert ratings == {"u": ["v1"]}

    def test_confidence_tracked_as_max(self, batch):
        batch.observe(_click("u", "v1"))
        batch.observe(UserAction(1.0, "u", "v1", ActionType.LIKE))
        assert batch._confidence[("u", "v1")] == pytest.approx(3.0)

    def test_impressions_ignored(self, batch):
        batch.observe(UserAction(0.0, "u", "v1", ActionType.IMPRESS))
        assert batch.ratings_by_user() == {}

    def test_retrain_with_no_data_is_noop(self, batch):
        batch.retrain(now=1.0)
        assert batch.trained_at is None


class TestServing:
    def test_watched_excluded(self, batch):
        for u in ("u1", "u2", "u3"):
            batch.observe(_click(u, "v1"))
            batch.observe(_click(u, "v2"))
        batch.retrain(now=1.0)
        recs = batch.recommend_ids("u1", n=5)
        assert "v1" not in recs
        assert "v2" not in recs

    def test_current_video_excluded(self, batch):
        for u in ("u1", "u2"):
            batch.observe(_click(u, "v1"))
            batch.observe(_click(u, "v2"))
        batch.retrain(now=1.0)
        assert "v2" not in batch.recommend_ids(
            "u1", current_video="v2", n=5
        )
