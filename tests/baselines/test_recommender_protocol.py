"""Every recommender in the system satisfies the common serving protocol —
what lets the A/B harness and offline protocol drive them uniformly."""

import pytest

from repro.baselines import (
    AssociationRuleRecommender,
    BatchMFRecommender,
    HotRecommender,
    ItemCFRecommender,
    Recommender,
    SimHashCFRecommender,
)
from repro.clock import VirtualClock
from repro.core import GroupedRecommender, RealtimeRecommender
from repro.data import ActionType, UserAction, Video

VIDEOS = {f"v{i}": Video(f"v{i}", "t", duration=500.0) for i in range(6)}


def _instances():
    return [
        HotRecommender(clock=VirtualClock(0.0)),
        AssociationRuleRecommender(),
        SimHashCFRecommender(),
        ItemCFRecommender(videos=VIDEOS),
        BatchMFRecommender(videos=VIDEOS),
        RealtimeRecommender(VIDEOS, clock=VirtualClock(0.0)),
        GroupedRecommender(VIDEOS, {}, clock=VirtualClock(0.0)),
    ]


@pytest.mark.parametrize(
    "recommender", _instances(), ids=lambda r: type(r).__name__
)
class TestProtocolCompliance:
    def test_satisfies_runtime_protocol(self, recommender):
        assert isinstance(recommender, Recommender)

    def test_observe_then_recommend_roundtrip(self, recommender):
        for i in range(12):
            recommender.observe(
                UserAction(float(i), f"u{i % 3}", f"v{i % 6}", ActionType.CLICK)
            )
        retrain = getattr(recommender, "retrain", None)
        if callable(retrain):
            retrain(now=100.0)
        result = recommender.recommend_ids("u0", n=5, now=100.0)
        assert isinstance(result, list)
        assert len(result) <= 5
        assert all(isinstance(v, str) for v in result)

    def test_unknown_user_never_crashes(self, recommender):
        result = recommender.recommend_ids("martian", n=3, now=0.0)
        assert isinstance(result, list)

    def test_current_video_variant(self, recommender):
        recommender.observe(UserAction(0.0, "u", "v0", ActionType.CLICK))
        result = recommender.recommend_ids(
            "u", current_video="v0", n=3, now=1.0
        )
        assert isinstance(result, list)
        assert "v0" not in result
