"""Tests for the Hot baseline."""

from repro.baselines import HotRecommender
from repro.clock import VirtualClock
from repro.data import ActionType, UserAction


def _click(user, video, ts=0.0):
    return UserAction(ts, user, video, ActionType.CLICK)


class TestHotRecommender:
    def test_ranks_by_popularity(self):
        hot = HotRecommender(clock=VirtualClock(0.0))
        for i in range(5):
            hot.observe(_click(f"u{i}", "popular"))
        hot.observe(_click("u0", "niche"))
        recs = hot.recommend_ids("fresh-user", n=2, now=0.0)
        assert recs[0] == "popular"

    def test_impressions_ignored(self):
        hot = HotRecommender(clock=VirtualClock(0.0))
        hot.observe(UserAction(0.0, "u", "v", ActionType.IMPRESS))
        assert hot.recommend_ids("u2", n=5, now=0.0) == []

    def test_recency_decay(self):
        """Hot means hot *now*: yesterday's hit decays below today's."""
        hot = HotRecommender(half_life=100.0, clock=VirtualClock(0.0))
        for i in range(4):
            hot.observe(_click(f"u{i}", "yesterday", ts=0.0))
        hot.observe(_click("u9", "today", ts=500.0))
        hot.observe(_click("u8", "today", ts=500.0))
        assert hot.recommend_ids("fresh", n=1, now=500.0) == ["today"]

    def test_excludes_watched(self):
        hot = HotRecommender(clock=VirtualClock(0.0), exclude_watched=True)
        for i in range(3):
            hot.observe(_click(f"u{i}", "hit"))
        hot.observe(_click("me", "hit"))
        hot.observe(_click("u0", "second"))
        assert "hit" not in hot.recommend_ids("me", n=2, now=0.0)
        assert "hit" in hot.recommend_ids("someone-else", n=2, now=0.0)

    def test_exclude_watched_off(self):
        hot = HotRecommender(clock=VirtualClock(0.0), exclude_watched=False)
        hot.observe(_click("me", "hit"))
        assert "hit" in hot.recommend_ids("me", n=2, now=0.0)

    def test_current_video_excluded(self):
        hot = HotRecommender(clock=VirtualClock(0.0))
        hot.observe(_click("u0", "hit"))
        assert hot.recommend_ids("u1", current_video="hit", n=5, now=0.0) == []

    def test_default_n(self):
        hot = HotRecommender(clock=VirtualClock(0.0))
        for i in range(15):
            hot.observe(_click("u", f"v{i}", ts=float(i)))
        assert len(hot.recommend_ids("other", now=20.0)) == 10
