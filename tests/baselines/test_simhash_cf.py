"""Tests for the SimHash user-based CF baseline."""

import pytest

from repro.baselines import (
    SIGNATURE_BITS,
    SimHashCFRecommender,
    hamming_similarity,
    simhash,
    token_hash,
)
from repro.data import ActionType, UserAction


def _click(user, video, ts=0.0):
    return UserAction(ts, user, video, ActionType.CLICK)


class TestSimHashPrimitive:
    def test_deterministic(self):
        profile = {"a": 1.0, "b": 2.0}
        assert simhash(profile) == simhash(profile)

    def test_empty_profile(self):
        assert simhash({}) == 0

    def test_64_bits(self):
        sig = simhash({f"v{i}": 1.0 for i in range(100)})
        assert 0 <= sig < 2**SIGNATURE_BITS

    def test_similar_profiles_small_hamming_distance(self):
        base = {f"v{i}": 1.0 for i in range(50)}
        near = dict(base)
        near["v0"] = 0.5  # tiny perturbation
        far = {f"w{i}": 1.0 for i in range(50)}
        sim_near = hamming_similarity(simhash(base), simhash(near))
        sim_far = hamming_similarity(simhash(base), simhash(far))
        assert sim_near > sim_far

    def test_token_hash_stable(self):
        assert token_hash("v1") == token_hash("v1")
        assert token_hash("v1") != token_hash("v2")

    def test_hamming_similarity_bounds(self):
        assert hamming_similarity(0, 0) == 1.0
        assert hamming_similarity(0, 2**64 - 1) == 0.0


class TestSimHashCF:
    def _twin_world(self):
        """Two groups of users with disjoint tastes."""
        cf = SimHashCFRecommender(min_similarity=0.6)
        group_a = [f"a{i}" for i in range(5)]
        group_b = [f"b{i}" for i in range(5)]
        for u in group_a:
            for v in ("x1", "x2", "x3", "x4"):
                cf.observe(_click(u, v))
        for u in group_b:
            for v in ("y1", "y2", "y3", "y4"):
                cf.observe(_click(u, v))
        # a0 misses x4; b0 misses y4
        cf._profiles["a0"].pop("x4")
        cf._profiles["b0"].pop("y4")
        cf.retrain(now=0.0)
        return cf

    def test_neighbors_come_from_same_taste_group(self):
        cf = self._twin_world()
        neighbors = {u for u, _ in cf.neighbors("a0")}
        assert neighbors
        assert all(u.startswith("a") for u in neighbors)

    def test_recommends_what_neighbors_watched(self):
        cf = self._twin_world()
        recs = cf.recommend_ids("a0", n=3)
        assert "x4" in recs  # the video a0 missed but the group loves
        assert not any(r.startswith("y") for r in recs)

    def test_watched_excluded(self):
        cf = self._twin_world()
        recs = cf.recommend_ids("a0", n=10)
        assert not {"x1", "x2", "x3"} & set(recs)

    def test_untrained_returns_nothing(self):
        cf = SimHashCFRecommender()
        cf.observe(_click("u", "v"))
        assert cf.recommend_ids("u", n=5) == []

    def test_unknown_user_returns_nothing(self):
        cf = self._twin_world()
        assert cf.recommend_ids("stranger", n=5) == []

    def test_batch_semantics(self):
        cf = SimHashCFRecommender(min_similarity=0.0)
        cf.observe(_click("u1", "a"))
        cf.observe(_click("u2", "a"))
        cf.retrain(now=0.0)
        cf.observe(_click("u3", "zzz"))  # not visible until retrain
        assert "u3" not in cf._signatures
        cf.retrain(now=1.0)
        assert "u3" in cf._signatures

    def test_bands_must_divide_signature(self):
        with pytest.raises(ValueError):
            SimHashCFRecommender(bands=7)

    def test_min_similarity_filters_neighbors(self):
        cf = SimHashCFRecommender(min_similarity=1.01)  # impossible bar
        cf.observe(_click("u1", "a"))
        cf.observe(_click("u2", "a"))
        cf.retrain(now=0.0)
        assert cf.neighbors("u1") == []
