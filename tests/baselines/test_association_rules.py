"""Tests for the AR (association rule) baseline."""

import pytest

from repro.baselines import AssociationRuleRecommender
from repro.data import ActionType, UserAction


def _click(user, video, ts):
    return UserAction(ts, user, video, ActionType.CLICK)


def _feed_baskets(ar, baskets, gap=10_000.0):
    """Feed each basket as one tight session per synthetic user."""
    for i, basket in enumerate(baskets):
        base = i * gap * 10
        for j, video in enumerate(basket):
            ar.observe(_click(f"u{i}", video, base + j))


class TestMining:
    def test_cooccurring_videos_produce_rules(self):
        ar = AssociationRuleRecommender(min_support=2, min_confidence=0.1)
        _feed_baskets(ar, [["a", "b"], ["a", "b"], ["a", "c"]])
        ar.retrain(now=0.0)
        assert ar.n_rules > 0
        recs = ar.recommend_ids("u9", current_video="a", n=2)
        assert recs[0] == "b"  # conf(a->b)=2/3 beats conf(a->c)=1/3

    def test_min_support_filters_rare_pairs(self):
        ar = AssociationRuleRecommender(min_support=2, min_confidence=0.0)
        _feed_baskets(ar, [["a", "b"]])
        ar.retrain(now=0.0)
        assert ar.recommend_ids("u9", current_video="a", n=5) == []

    def test_min_confidence_filters_weak_rules(self):
        ar = AssociationRuleRecommender(min_support=1, min_confidence=0.9)
        # a appears in 3 baskets, with b only once: conf(a->b) = 1/3 < 0.9
        _feed_baskets(ar, [["a", "b"], ["a", "c"], ["a", "d"]])
        ar.retrain(now=0.0)
        assert ar.recommend_ids("u9", current_video="a", n=5) == []

    def test_sessionisation_splits_by_gap(self):
        ar = AssociationRuleRecommender(
            min_support=1, min_confidence=0.0, session_gap=100.0
        )
        # same user, two far-apart engagements: separate sessions, no pair
        ar.observe(_click("u1", "a", 0.0))
        ar.observe(_click("u1", "b", 10_000.0))
        ar.retrain(now=0.0)
        assert ar.n_rules == 0

    def test_rules_directional_confidence(self):
        ar = AssociationRuleRecommender(min_support=1, min_confidence=0.0)
        # a in 3 baskets, b in 1: conf(b->a)=1 > conf(a->b)=1/3
        _feed_baskets(ar, [["a", "b"], ["a", "x"], ["a", "y"]])
        ar.retrain(now=0.0)
        rules = ar._rules
        conf_ab = dict(rules["a"]).get("b", 0.0)
        conf_ba = dict(rules["b"]).get("a", 0.0)
        assert conf_ba == pytest.approx(1.0)
        assert conf_ab == pytest.approx(1 / 3)

    def test_untrained_model_returns_nothing(self):
        ar = AssociationRuleRecommender()
        ar.observe(_click("u", "a", 0.0))
        assert ar.recommend_ids("u", current_video="a", n=5) == []

    def test_batch_semantics_ignore_new_data_until_retrain(self):
        """Daily batch training: new actions only count after retrain."""
        ar = AssociationRuleRecommender(min_support=1, min_confidence=0.0)
        _feed_baskets(ar, [["a", "b"]])
        ar.retrain(now=1.0)
        before = ar.n_rules
        _feed_baskets(ar, [["a", "c"], ["a", "c"]])
        assert ar.n_rules == before
        ar.retrain(now=2.0)
        assert ar.n_rules > before


class TestServing:
    def test_seeds_from_history_when_not_watching(self):
        ar = AssociationRuleRecommender(min_support=1, min_confidence=0.0, exclude_watched=False)
        _feed_baskets(ar, [["a", "b"], ["a", "b"]])
        ar.observe(_click("me", "a", 1e9))
        ar.retrain(now=0.0)
        assert "b" in ar.recommend_ids("me", n=3)

    def test_watched_videos_excluded(self):
        ar = AssociationRuleRecommender(min_support=1, min_confidence=0.0)
        _feed_baskets(ar, [["a", "b"], ["a", "b"]])
        ar.observe(_click("me", "a", 1e9))
        ar.observe(_click("me", "b", 1e9 + 1))
        ar.retrain(now=0.0)
        assert "b" not in ar.recommend_ids("me", n=3)

    def test_scores_aggregate_over_seeds(self):
        ar = AssociationRuleRecommender(min_support=1, min_confidence=0.0, exclude_watched=False)
        _feed_baskets(ar, [["a", "c"], ["b", "c"], ["a", "x"]])
        ar.observe(_click("me", "a", 1e9))
        ar.observe(_click("me", "b", 1e9 + 1))
        ar.retrain(now=0.0)
        recs = ar.recommend_ids("me", n=1)
        assert recs == ["c"]  # supported by both seeds

    def test_validation(self):
        with pytest.raises(ValueError):
            AssociationRuleRecommender(min_support=0)
        with pytest.raises(ValueError):
            AssociationRuleRecommender(min_confidence=2.0)
