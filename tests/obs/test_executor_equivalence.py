"""Executor equivalence, pinned through the metrics registry.

The substrate's contract is that LocalExecutor and ThreadedExecutor honour
identical grouping semantics; observability makes that checkable in one
line: run the same stream through both and diff ``counter_totals()``.

The topology here is purpose-built so the contract is exact: every piece
of state is owned by one fields-grouped key (single writer per key), so
outputs and counts are fully deterministic under true thread interleaving.
Latency histograms legitimately differ between executors — counters may
not.
"""

import pytest

from repro.obs import Observability
from repro.storm import (
    Bolt,
    LocalExecutor,
    Spout,
    StreamTuple,
    ThreadedExecutor,
    TopologyBuilder,
)

N_TUPLES = 60
N_KEYS = 7
TOP_N = 5


class _ActionSpout(Spout):
    def __init__(self) -> None:
        self._i = 0

    def next_tuple(self) -> StreamTuple | None:
        if self._i >= N_TUPLES:
            return None
        tup = StreamTuple({"k": self._i % N_KEYS, "v": self._i})
        self._i += 1
        return tup


class _AggregateBolt(Bolt):
    """Per-key running sum.  State is private to the worker instance, and
    fields grouping guarantees one worker owns each key."""

    def __init__(self, registry) -> None:
        self._sums: dict[int, int] = {}
        self._updates = registry.counter(
            "aggregate_updates_total",
            "per-key aggregate updates",
            labelnames=("key",),
        )

    def process(self, tup, collector):
        k = tup["k"]
        self._sums[k] = self._sums.get(k, 0) + tup["v"]
        self._updates.labels(key=str(k)).inc()
        collector.emit({"k": k, "sum": self._sums[k]})


class _RankBolt(Bolt):
    """Records the latest sum per key.  Fields grouping by ``k`` gives one
    writer per key, and per-key FIFO delivery makes 'latest' well-defined
    under both executors."""

    def __init__(self, results: dict) -> None:
        self._results = results

    def process(self, tup, collector):
        self._results[tup["k"]] = tup["sum"]


def _run(executor_cls):
    obs = Observability.create()
    results: dict[int, int] = {}
    builder = TopologyBuilder()
    builder.set_spout("spout", _ActionSpout)
    builder.set_bolt(
        "aggregate", lambda: _AggregateBolt(obs.registry), parallelism=3
    ).fields_grouping("spout", ["k"])
    builder.set_bolt(
        "rank", lambda: _RankBolt(results), parallelism=2
    ).fields_grouping("aggregate", ["k"])
    topology = builder.build()

    executor = executor_cls(topology, obs=obs)
    if executor_cls is ThreadedExecutor:
        executor.run(timeout=60.0)
    else:
        executor.run()

    top_n = sorted(results.items(), key=lambda kv: (-kv[1], kv[0]))[:TOP_N]
    return top_n, obs


def _expected_sums():
    sums: dict[int, int] = {}
    for i in range(N_TUPLES):
        sums[i % N_KEYS] = sums.get(i % N_KEYS, 0) + i
    return sums


def test_same_input_same_output_same_counters():
    local_top, local_obs = _run(LocalExecutor)
    threaded_top, threaded_obs = _run(ThreadedExecutor)

    # Identical ranked output...
    assert local_top == threaded_top
    expected = _expected_sums()
    assert local_top == sorted(
        expected.items(), key=lambda kv: (-kv[1], kv[0])
    )[:TOP_N]

    # ...and identical counter totals, storm-level and application-level.
    local_totals = local_obs.registry.counter_totals()
    threaded_totals = threaded_obs.registry.counter_totals()
    assert local_totals == threaded_totals

    # Sanity-pin the absolute numbers so the diff can't pass vacuously.
    assert local_totals["storm_tuples_processed_total{component=aggregate}"] == N_TUPLES
    assert local_totals["storm_tuples_processed_total{component=rank}"] == N_TUPLES
    assert local_totals["storm_tuples_shed_total{component=aggregate}"] == 0
    for k, count in [(k, N_TUPLES // N_KEYS + (1 if k < N_TUPLES % N_KEYS else 0)) for k in range(N_KEYS)]:
        assert local_totals[f"aggregate_updates_total{{key={k}}}"] == count


def test_trace_span_counts_agree_between_executors():
    _, local_obs = _run(LocalExecutor)
    _, threaded_obs = _run(ThreadedExecutor)
    local_stages = local_obs.tracer.stage_latencies()
    threaded_stages = threaded_obs.tracer.stage_latencies()
    assert {
        name: agg["count"] for name, agg in local_stages.items()
    } == {name: agg["count"] for name, agg in threaded_stages.items()}
    assert local_stages["spout:spout"]["count"] == N_TUPLES


@pytest.mark.parametrize(
    "executor_cls", [LocalExecutor, ThreadedExecutor], ids=["local", "threaded"]
)
def test_counters_stable_across_repeated_runs(executor_cls):
    first_top, first_obs = _run(executor_cls)
    second_top, second_obs = _run(executor_cls)
    assert first_top == second_top
    assert (
        first_obs.registry.counter_totals()
        == second_obs.registry.counter_totals()
    )
