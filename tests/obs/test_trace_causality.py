"""Span causality invariants, unit-level and through both executors.

The deferred-children protocol promises: a parent span's ``end`` brackets
its whole subtree, every non-root span's parent exists in the same trace,
and each spout tuple gets exactly one trace even when fields grouping fans
its descendants out across workers.  These properties must hold under the
deterministic LocalExecutor and the ThreadedExecutor alike.
"""

import pytest

from repro.clock import VirtualClock
from repro.obs import Observability, Tracer
from repro.storm import (
    Bolt,
    LocalExecutor,
    Spout,
    StreamTuple,
    ThreadedExecutor,
    TopologyBuilder,
)

# ---------------------------------------------------------------------------
# Tracer unit tests
# ---------------------------------------------------------------------------


def test_sync_spans_nest_via_ambient_parent():
    tracer = Tracer(clock=VirtualClock(0.0))
    with tracer.span("outer") as outer:
        with tracer.span("inner") as inner:
            assert tracer.current_span() is inner
        assert tracer.current_span() is outer
    assert tracer.current_span() is None
    spans = {s.name: s for s in tracer.finished_spans()}
    assert spans["inner"].parent_id == spans["outer"].span_id
    assert spans["inner"].trace_id == spans["outer"].trace_id


def test_deferred_parent_stays_open_until_children_complete():
    clock = VirtualClock(0.0)
    tracer = Tracer(clock=clock)
    root = tracer.start_span("root", parent=None)
    tracer.defer_child(root)
    tracer.defer_child(root)
    clock.advance(1.0)
    root.finish()
    # Own work done, but two deferred slots are outstanding.
    assert not root.finished
    assert tracer.active_span_count() == 1

    child_a = tracer.start_deferred("a", parent=root.context)
    clock.advance(1.0)
    child_a.finish()
    assert not root.finished  # one slot left

    child_b = tracer.start_deferred("b", parent=root.context)
    clock.advance(1.0)
    child_b.finish()
    assert root.finished
    assert tracer.active_span_count() == 0
    # Subtree duration covers the children; self duration does not.
    assert root.self_duration == 1.0
    assert root.duration == 3.0


def test_cancel_deferred_releases_a_slot():
    tracer = Tracer(clock=VirtualClock(0.0))
    root = tracer.start_span("root", parent=None)
    tracer.defer_child(root)
    root.finish()
    assert not root.finished
    tracer.cancel_deferred(root.context)  # the delivery was shed
    assert root.finished
    assert tracer.active_span_count() == 0


def test_span_records_error_from_exception():
    tracer = Tracer(clock=VirtualClock(0.0))
    with pytest.raises(RuntimeError):
        with tracer.span("work"):
            raise RuntimeError("boom")
    (span,) = tracer.finished_spans()
    assert span.error == "RuntimeError: boom"


def test_unsampled_traces_record_nothing():
    tracer = Tracer(clock=VirtualClock(0.0), sample_every=3)
    kept = 0
    for _ in range(9):
        span = tracer.start_span("root", parent=None)
        if span.context.sampled:
            kept += 1
        span.finish()
    assert kept == 3  # every 3rd trace
    assert len(tracer.finished_spans()) == 3
    assert tracer.active_span_count() == 0


def test_max_spans_bounds_memory_and_counts_drops():
    tracer = Tracer(clock=VirtualClock(0.0), max_spans=5)
    for _ in range(8):
        tracer.start_span("s", parent=None).finish()
    assert len(tracer.finished_spans()) == 5
    assert tracer.dropped_spans == 3


# ---------------------------------------------------------------------------
# Through the topology, under both executors
# ---------------------------------------------------------------------------

N_TUPLES = 12


class _ListSpout(Spout):
    """Emits a fixed action list: key cycles over 3 values."""

    def __init__(self) -> None:
        self._items = [{"k": i % 3, "v": i} for i in range(N_TUPLES)]
        self._i = 0

    def next_tuple(self) -> StreamTuple | None:
        if self._i >= len(self._items):
            return None
        tup = StreamTuple(self._items[self._i])
        self._i += 1
        return tup


class _SplitBolt(Bolt):
    """Fans each tuple out: one 'even' copy plus one 'odd' copy."""

    def process(self, tup, collector):
        collector.emit({"k": tup["k"], "v": tup["v"], "side": "even"})
        collector.emit({"k": tup["k"], "v": tup["v"], "side": "odd"})


class _SinkBolt(Bolt):
    def process(self, tup, collector):
        pass


def _traced_topology():
    builder = TopologyBuilder()
    builder.set_spout("spout", _ListSpout)
    builder.set_bolt("split", _SplitBolt, parallelism=2).fields_grouping(
        "spout", ["k"]
    )
    builder.set_bolt("sink", _SinkBolt, parallelism=3).fields_grouping(
        "split", ["k"]
    )
    return builder.build()


def _run(executor_cls):
    obs = Observability.create()
    executor = executor_cls(_traced_topology(), obs=obs)
    if executor_cls is ThreadedExecutor:
        executor.run(timeout=60.0)
    else:
        executor.run()
    return obs.tracer


@pytest.mark.parametrize(
    "executor_cls", [LocalExecutor, ThreadedExecutor], ids=["local", "threaded"]
)
def test_topology_traces_are_causal(executor_cls):
    tracer = _run(executor_cls)

    # Every reserved slot was consumed: nothing is left open.
    assert tracer.active_span_count() == 0

    traces = tracer.complete_traces()
    # One distinct trace per spout tuple, despite fields-grouped fan-out.
    assert len(traces) == N_TUPLES
    assert len(tracer.traces()) == N_TUPLES

    for trace_id, spans in traces.items():
        by_id = {s.span_id: s for s in spans}
        roots = [s for s in spans if s.is_root]
        assert len(roots) == 1, f"trace {trace_id} must have exactly one root"
        root = roots[0]
        assert root.name == "spout:spout"
        # spout -> 1 split invocation -> 2 emitted -> 2 sink invocations.
        names = sorted(s.name for s in spans)
        assert names == [
            "bolt:sink",
            "bolt:sink",
            "bolt:split",
            "spout:spout",
        ]
        for span in spans:
            assert span.finished
            assert span.trace_id == trace_id
            assert span.work_end >= span.start
            assert span.end >= span.work_end
            if span.parent_id is None:
                continue
            # No orphans: the parent is part of the same exported trace...
            assert span.parent_id in by_id, f"orphan span {span.name}"
            parent = by_id[span.parent_id]
            # ...and the child's interval nests inside the parent's.
            assert span.start >= parent.start
            assert span.end <= parent.end


@pytest.mark.parametrize(
    "executor_cls", [LocalExecutor, ThreadedExecutor], ids=["local", "threaded"]
)
def test_stage_latencies_attribute_every_stage(executor_cls):
    tracer = _run(executor_cls)
    stages = tracer.stage_latencies()
    assert stages["spout:spout"]["count"] == N_TUPLES
    assert stages["bolt:split"]["count"] == N_TUPLES
    assert stages["bolt:sink"]["count"] == 2 * N_TUPLES
    for agg in stages.values():
        assert agg["subtree_seconds"] >= agg["self_seconds"] >= 0.0


def test_span_tree_renders_nested_structure():
    tracer = _run(LocalExecutor)
    trace_id = next(iter(tracer.complete_traces()))
    tree = tracer.span_tree(trace_id)
    assert tree["name"] == "spout:spout"
    assert [c["name"] for c in tree["children"]] == ["bolt:split"]
    split = tree["children"][0]
    assert [c["name"] for c in split["children"]] == ["bolt:sink", "bolt:sink"]
    assert all(c["attributes"].get("deferred") for c in split["children"])


def test_sampled_topology_run_keeps_every_nth_trace():
    obs = Observability(tracer=Tracer(sample_every=4))
    LocalExecutor(_traced_topology(), obs=obs).run()
    # 12 spout tuples, every 4th sampled -> 3 complete traces, none open.
    assert len(obs.tracer.complete_traces()) == 3
    assert obs.tracer.active_span_count() == 0
