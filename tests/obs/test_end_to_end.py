"""The observability acceptance path, end to end, under both executors.

One ``Observability`` bundle threads through the whole system: a synthetic
action stream drives the paper's Figure-2 topology (training the model),
then 100 requests are routed through a serving recommender over the same
KV store.  Afterwards the bundle must hold

* one ``to_json()`` registry document covering every subsystem's metrics;
* at least one complete trace covering spout → bolt(s) → trainer, and at
  least one covering router → recommender → KV.
"""

import json

import pytest

from repro.clock import VirtualClock
from repro.obs import Observability
from repro.serving import RecRequest, RequestRouter
from repro.storm import LocalExecutor, ThreadedExecutor
from repro.topology import build_recommendation_topology

N_REQUESTS = 100


def _run_system(small_world, small_split, executor_cls, obs):
    topology, system = build_recommendation_topology(
        list(small_split.train),
        small_world.videos,
        users=small_world.users,
        clock=VirtualClock(0.0),
        obs=obs,
    )
    executor = executor_cls(topology, obs=obs)
    if executor_cls is ThreadedExecutor:
        executor.run(timeout=120.0)
    else:
        executor.run()

    recommender = system.serving_recommender()
    router = RequestRouter(recommender, obs=obs)
    now = max(a.timestamp for a in small_split.train) + 1
    users = [u for u in small_world.users if recommender.history.recent(u)]
    assert users, "the topology run must have populated user histories"
    for i in range(N_REQUESTS):
        response = router.handle(
            RecRequest(user_id=users[i % len(users)], n=10, timestamp=now)
        )
        assert not response.shed
    return system


@pytest.mark.parametrize(
    "executor_cls", [LocalExecutor, ThreadedExecutor], ids=["local", "threaded"]
)
def test_end_to_end_observability(small_world, small_split, executor_cls):
    obs = Observability.create(sample_every=10)
    _run_system(small_world, small_split, executor_cls, obs)

    # -- one registry document covering every layer ------------------------
    document = json.loads(obs.registry.to_json())
    assert document["schema_version"] == 1
    metrics = document["metrics"]
    for family in (
        "storm_tuples_processed_total",
        "storm_process_latency_seconds",
        "kvstore_ops_total",
        "trainer_actions_total",
        "recommender_request_latency_seconds",
        "serving_requests_total",
        "serving_request_latency_seconds",
    ):
        assert family in metrics, f"missing metric family {family}"

    served = sum(
        series["value"]
        for series in metrics["serving_requests_total"]["series"]
    )
    assert served == N_REQUESTS

    # -- traces: nothing left open, and both acceptance shapes present -----
    assert obs.tracer.active_span_count() == 0
    traces = obs.tracer.complete_traces().values()
    assert traces

    topo_shape = {"spout:spout", "bolt:compute_mf", "trainer.update"}
    serving_shape = {"router.handle", "recommender.recommend"}
    topo_traces = [
        spans
        for spans in traces
        if topo_shape <= {s.name for s in spans}
    ]
    serving_traces = [
        spans
        for spans in traces
        if serving_shape <= {s.name for s in spans}
        and any(s.name.startswith("kv.") for s in spans)
    ]
    assert topo_traces, "no complete trace covers spout -> bolt -> trainer"
    assert serving_traces, "no complete trace covers router -> recommender -> kv"

    # Per-stage attribution is available over the whole run.
    stages = obs.tracer.stage_latencies()
    for stage in ("spout:spout", "bolt:compute_mf", "router.handle", "kv.get"):
        assert stages[stage]["count"] > 0

    # The causal chain hangs together inside one serving trace: the
    # recommender span is a child of the router span.
    spans = serving_traces[0]
    by_id = {s.span_id: s for s in spans}
    rec = next(s for s in spans if s.name == "recommender.recommend")
    chain = set()
    cursor = rec
    while cursor.parent_id is not None:
        cursor = by_id[cursor.parent_id]
        chain.add(cursor.name)
    assert "router.handle" in chain
