"""Unit and property tests for the registry instruments."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.clock import VirtualClock
from repro.obs import (
    DEFAULT_BUCKETS,
    REGISTRY_SCHEMA_VERSION,
    MetricsRegistry,
)


def test_counter_monotonic_and_negative_rejected():
    reg = MetricsRegistry()
    c = reg.counter("ops_total", "ops")
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_set_inc_dec():
    reg = MetricsRegistry()
    g = reg.gauge("queue_depth", "depth")
    g.set(7)
    g.inc(3)
    g.dec(2)
    assert g.value == 8


def test_metric_names_validated():
    reg = MetricsRegistry()
    with pytest.raises(ValueError):
        reg.counter("Bad-Name", "nope")


def test_kind_mismatch_rejected():
    reg = MetricsRegistry()
    reg.counter("thing_total", "x")
    with pytest.raises(ValueError):
        reg.gauge("thing_total", "x")


def test_labelnames_mismatch_rejected():
    reg = MetricsRegistry()
    reg.counter("ops_total", "x", labelnames=("op",))
    with pytest.raises(ValueError):
        reg.counter("ops_total", "x", labelnames=("other",))


def test_labelled_series_are_independent():
    reg = MetricsRegistry()
    c = reg.counter("ops_total", "x", labelnames=("op",))
    c.labels(op="get").inc(2)
    c.labels(op="put").inc(5)
    totals = reg.counter_totals()
    assert totals["ops_total{op=get}"] == 2
    assert totals["ops_total{op=put}"] == 5


def test_unlabelled_use_of_labelled_metric_rejected():
    reg = MetricsRegistry()
    c = reg.counter("ops_total", "x", labelnames=("op",))
    with pytest.raises(ValueError):
        c.inc()


def test_histogram_rejects_non_increasing_buckets():
    reg = MetricsRegistry()
    with pytest.raises(ValueError):
        reg.histogram("lat_seconds", "x", buckets=(0.1, 0.1, 0.2))


@given(
    st.lists(
        st.floats(
            min_value=0.0,
            max_value=100.0,
            allow_nan=False,
            allow_infinity=False,
        ),
        min_size=1,
        max_size=200,
    )
)
def test_histogram_bucket_monotonicity(samples):
    """Cumulative bucket counts never decrease as ``le`` grows, and the
    final implicit +Inf bucket equals the observation count."""
    reg = MetricsRegistry()
    h = reg.histogram("lat_seconds", "x")
    for s in samples:
        h.observe(s)
    state = h.state()
    counts = [b["count"] for b in state["buckets"]]
    assert counts == sorted(counts)
    assert counts[-1] == len(samples)
    assert state["count"] == len(samples)
    assert math.isclose(state["sum"], sum(samples), rel_tol=1e-9, abs_tol=1e-9)
    # Every bucket's count is exactly the number of samples <= its bound.
    bounds = list(DEFAULT_BUCKETS) + [float("inf")]
    for bound, count in zip(bounds, counts):
        assert count == sum(1 for s in samples if s <= bound)


def test_histogram_percentiles_from_samples():
    reg = MetricsRegistry()
    h = reg.histogram("lat_seconds", "x")
    for v in [0.001, 0.002, 0.003, 0.004, 0.005]:
        h.observe(v)
    assert h.percentile(50.0) == 0.003
    assert h.percentile(100.0) == 0.005


def test_histogram_timer_uses_injected_clock():
    clock = VirtualClock(0.0)
    reg = MetricsRegistry(clock=clock)
    h = reg.histogram("lat_seconds", "x")
    with h.time():
        clock.advance(0.25)
    assert h.state()["sum"] == 0.25


def test_snapshot_is_immutable_and_detached():
    reg = MetricsRegistry()
    c = reg.counter("ops_total", "x")
    c.inc(3)
    snap1 = reg.snapshot()
    # Mutating the snapshot must not affect the registry...
    snap1["ops_total"]["series"][0]["value"] = 999
    snap2 = reg.snapshot()
    assert snap2["ops_total"]["series"][0]["value"] == 3
    # ...and further instrument activity must not mutate old snapshots.
    c.inc()
    assert snap2["ops_total"]["series"][0]["value"] == 3


def test_to_json_schema_versioned():
    import json

    reg = MetricsRegistry()
    reg.counter("ops_total", "x").inc()
    doc = json.loads(reg.to_json())
    assert doc["schema_version"] == REGISTRY_SCHEMA_VERSION
    assert "ops_total" in doc["metrics"]


def test_total_sums_matching_series():
    reg = MetricsRegistry()
    c = reg.counter("requests_total", "x", labelnames=("outcome", "arm"))
    c.labels(outcome="ok", arm="a").inc(3)
    c.labels(outcome="ok", arm="b").inc(4)
    c.labels(outcome="shed", arm="a").inc(2)
    assert reg.total("requests_total") == 9
    assert reg.total("requests_total", outcome="ok") == 7
    assert reg.total("requests_total", outcome="shed", arm="a") == 2
    assert reg.total("requests_total", outcome="shed", arm="b") == 0


def test_total_unknown_metric_is_zero():
    assert MetricsRegistry().total("never_registered_total") == 0.0


def test_total_rejects_histograms_and_unknown_labels():
    reg = MetricsRegistry()
    reg.histogram("lat_seconds", "x")
    with pytest.raises(ValueError):
        reg.total("lat_seconds")
    reg.counter("ops_total", "x", labelnames=("op",))
    with pytest.raises(ValueError):
        reg.total("ops_total", nope="y")
