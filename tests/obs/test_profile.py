"""Profiling hooks: ``@profiled`` wrappers and the sampling profiler."""

import time

import pytest

from repro.clock import VirtualClock
from repro.core.mf import MFModel
from repro.obs import FunctionProfiler, SamplingProfiler, profiled


def test_profiled_without_active_profiler_is_a_plain_call():
    calls = []

    @profiled
    def work(x):
        calls.append(x)
        return x * 2

    assert work(21) == 42
    assert calls == [21]
    # Nothing was recorded anywhere.
    prof = FunctionProfiler()
    assert prof.stats() == {}


def test_profiled_records_into_the_active_profiler():
    clock = VirtualClock(0.0)
    prof = FunctionProfiler(clock=clock.now)

    @profiled(name="test.work")
    def work():
        clock.advance(0.5)

    with prof.activate():
        work()
        work()
    work()  # outside the active block: not recorded

    stats = prof.stats()
    assert stats == {
        "test.work": {
            "calls": 2,
            "total_seconds": 1.0,
            "mean_seconds": 0.5,
        }
    }
    assert "test.work" in prof.report()


def test_profiled_default_label_and_explicit_name():
    @profiled
    def plain():
        pass

    assert plain.__profiled_name__.endswith("plain")

    @profiled(name="custom.label")
    def named():
        pass

    assert named.__profiled_name__ == "custom.label"


def test_mf_hot_paths_are_instrumented():
    """The paper's two hot paths carry stable profiling labels."""
    assert MFModel.predict_many.__profiled_name__ == "mf.predict_many"
    assert MFModel.compute_update.__profiled_name__ == "mf.compute_update"


def test_activate_nests_and_restores():
    outer = FunctionProfiler()
    inner = FunctionProfiler()

    @profiled(name="test.nested")
    def work():
        pass

    with outer.activate():
        with inner.activate():
            work()
        work()
    assert inner.stats()["test.nested"]["calls"] == 1
    assert outer.stats()["test.nested"]["calls"] == 1


def test_exceptions_are_still_recorded():
    prof = FunctionProfiler(clock=VirtualClock(0.0).now)

    @profiled(name="test.boom")
    def boom():
        raise RuntimeError("boom")

    with prof.activate():
        with pytest.raises(RuntimeError):
            boom()
    assert prof.stats()["test.boom"]["calls"] == 1


def test_reset_clears_collected_stats():
    prof = FunctionProfiler()

    @profiled(name="test.reset")
    def work():
        pass

    with prof.activate():
        work()
    assert prof.stats()
    prof.reset()
    assert prof.stats() == {}


def test_sampling_profiler_sees_a_busy_function():
    def busy(deadline):
        total = 0
        while time.perf_counter() < deadline:
            total += sum(range(200))
        return total

    with SamplingProfiler(interval=0.001) as prof:
        busy(time.perf_counter() + 0.2)
    assert prof.samples > 0
    frames = prof.hot_frames()
    assert frames, "expected at least one sampled frame"
    assert any("busy" in label or "test_profile" in label for label, _ in frames)
    shares = prof.stats()
    assert all(0.0 < share <= 1.0 for share in shares.values())
    assert "frame" in prof.report()


def test_sampling_profiler_rejects_bad_interval_and_double_start():
    with pytest.raises(ValueError):
        SamplingProfiler(interval=0.0)
    prof = SamplingProfiler(interval=0.01).start()
    try:
        with pytest.raises(RuntimeError):
            prof.start()
    finally:
        prof.stop()
