"""The unified percentile codepath: one convention, everywhere.

Every latency summary in the system (LatencyStats, Histogram, bench JSON)
funnels through ``repro.obs.percentiles.nearest_rank``.  These tests pin
the convention itself — nearest-rank equals numpy's ``inverted_cdf`` for
q > 0 — and that the two consumer classes agree exactly on shared samples.
"""

import math
import random

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs import MetricsRegistry, nearest_rank, summarize
from repro.storm.metrics import LatencyStats


def test_empty_samples_return_zero():
    assert nearest_rank([], 50.0) == 0.0
    assert summarize([]) == {"p50": 0.0, "p95": 0.0, "p99": 0.0}


def test_out_of_range_quantile_rejected():
    with pytest.raises(ValueError):
        nearest_rank([1.0], 101.0)
    with pytest.raises(ValueError):
        nearest_rank([1.0], -0.1)


def test_known_values():
    samples = [15.0, 20.0, 35.0, 40.0, 50.0]
    assert nearest_rank(samples, 5.0) == 15.0
    assert nearest_rank(samples, 30.0) == 20.0
    assert nearest_rank(samples, 40.0) == 20.0
    assert nearest_rank(samples, 50.0) == 35.0
    assert nearest_rank(samples, 100.0) == 50.0


def test_unsorted_input_is_sorted_internally():
    samples = [9.0, 1.0, 5.0]
    assert nearest_rank(samples, 50.0) == 5.0
    assert samples == [9.0, 1.0, 5.0]  # caller's buffer untouched


@given(
    st.lists(
        st.floats(
            min_value=0.0,
            max_value=1e6,
            allow_nan=False,
            allow_infinity=False,
        ),
        min_size=1,
        max_size=300,
    ),
    st.floats(min_value=0.001, max_value=100.0),
)
def test_matches_numpy_inverted_cdf(samples, q):
    """Regression vs numpy: nearest-rank == ``inverted_cdf`` for q > 0."""
    ours = nearest_rank(samples, q)
    theirs = float(np.percentile(samples, q, method="inverted_cdf"))
    assert math.isclose(ours, theirs, rel_tol=0.0, abs_tol=0.0)


def test_q_zero_returns_minimum():
    assert nearest_rank([3.0, 1.0, 2.0], 0.0) == 1.0


def test_summarize_matches_nearest_rank():
    rng = random.Random(7)
    samples = [rng.uniform(0.0, 1.0) for _ in range(137)]
    summary = summarize(samples, quantiles=(50.0, 95.0, 99.0, 99.9))
    assert summary["p50"] == nearest_rank(samples, 50.0)
    assert summary["p95"] == nearest_rank(samples, 95.0)
    assert summary["p99"] == nearest_rank(samples, 99.0)
    assert summary["p99.9"] == nearest_rank(samples, 99.9)


@given(
    st.lists(
        st.floats(
            min_value=0.0,
            max_value=10.0,
            allow_nan=False,
            allow_infinity=False,
        ),
        min_size=1,
        max_size=200,
    )
)
def test_latency_stats_and_histogram_agree(samples):
    """The two latency summaries share one codepath: identical answers on
    identical samples, for every quantile the system reports."""
    stats = LatencyStats()
    reg = MetricsRegistry()
    hist = reg.histogram("lat_seconds", "x")
    for s in samples:
        stats.record(s)
        hist.observe(s)
    for q in (0.0, 50.0, 90.0, 95.0, 99.0, 100.0):
        assert stats.percentile(q) == hist.percentile(q)
