"""Golden snapshot of ``MetricsRegistry.to_json()``.

A fully deterministic observability bundle (every clock is one shared
``VirtualClock``) drives a small topology whose bolt advances that clock
by a fixed amount per tuple — so every counter, gauge, histogram bucket,
and percentile in the exported document is exact, and the JSON can be
diffed byte-for-byte against a committed golden file.

The golden file pins the export *schema*: field names, series structure,
bucket layout, sort order.  To regenerate after an intentional schema
change::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/obs/test_golden_snapshot.py
"""

import os
from pathlib import Path

from repro.kvstore import InMemoryKVStore
from repro.obs import Observability
from repro.storm import Bolt, LocalExecutor, Spout, StreamTuple, TopologyBuilder

GOLDEN = Path(__file__).parent / "golden" / "registry_snapshot.json"

N_TUPLES = 6


class _FixedSpout(Spout):
    def __init__(self) -> None:
        self._i = 0

    def next_tuple(self) -> StreamTuple | None:
        if self._i >= N_TUPLES:
            return None
        tup = StreamTuple({"k": self._i % 2, "v": self._i})
        self._i += 1
        return tup


class _WorkBolt(Bolt):
    """Simulates 1 ms of work on the shared virtual clock, then writes
    through the instrumented KV store."""

    def __init__(self, clock, store) -> None:
        self._clock = clock
        self._store = store

    def process(self, tup, collector):
        self._clock.advance(0.001)
        self._store.put(f"count:{tup['k']}", tup["v"])
        self._store.get(f"count:{tup['k']}")


def _deterministic_registry_json() -> str:
    obs = Observability.deterministic()
    clock = obs.perf_clock  # the one VirtualClock behind everything
    store = obs.instrument_store(InMemoryKVStore(clock=clock))
    builder = TopologyBuilder()
    builder.set_spout("spout", _FixedSpout)
    builder.set_bolt(
        "work", lambda: _WorkBolt(clock, store), parallelism=2
    ).fields_grouping("spout", ["k"])
    LocalExecutor(builder.build(), obs=obs).run()
    return obs.registry.to_json()


def test_deterministic_bundle_is_reproducible():
    assert _deterministic_registry_json() == _deterministic_registry_json()


def test_registry_to_json_matches_golden():
    document = _deterministic_registry_json() + "\n"
    if os.environ.get("REPRO_UPDATE_GOLDEN"):
        GOLDEN.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN.write_text(document)
    assert GOLDEN.exists(), (
        "golden file missing - regenerate with REPRO_UPDATE_GOLDEN=1"
    )
    assert document == GOLDEN.read_text(), (
        "registry JSON diverged from the golden snapshot; if the schema "
        "change is intentional, regenerate with REPRO_UPDATE_GOLDEN=1"
    )
