"""Tests for stream groupings — especially the single-writer property of
fields grouping that the paper's §5.1 correctness argument rests on."""

from collections import Counter

from repro.storm import (
    AllGrouping,
    FieldsGrouping,
    GlobalGrouping,
    ShuffleGrouping,
    StreamTuple,
)


def _tup(**fields):
    return StreamTuple(fields)


class TestFieldsGrouping:
    def test_same_key_same_worker(self):
        g = FieldsGrouping(["user"])
        workers = {
            g.select(_tup(user="u1", video=f"v{i}"), 8)[0] for i in range(50)
        }
        assert len(workers) == 1

    def test_selection_is_stable_across_instances(self):
        """Two grouping objects with the same fields route identically —
        routing must not depend on instance state."""
        g1 = FieldsGrouping(["user"])
        g2 = FieldsGrouping(["user"])
        for i in range(30):
            t = _tup(user=f"u{i}")
            assert g1.select(t, 8) == g2.select(t, 8)

    def test_different_keys_spread(self):
        g = FieldsGrouping(["user"])
        counts = Counter(
            g.select(_tup(user=f"u{i}"), 8)[0] for i in range(800)
        )
        assert len(counts) == 8
        assert min(counts.values()) > 40

    def test_multi_field_key(self):
        g = FieldsGrouping(["kind", "key"])
        a = g.select(_tup(kind="user", key="x1"), 16)
        b = g.select(_tup(kind="video", key="x1"), 16)
        # same 'key' but different 'kind' may route differently; the same
        # combination always routes identically
        assert g.select(_tup(kind="user", key="x1"), 16) == a
        assert g.select(_tup(kind="video", key="x1"), 16) == b

    def test_single_delivery(self):
        g = FieldsGrouping(["user"])
        assert len(g.select(_tup(user="u"), 4)) == 1

    def test_empty_fields_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            FieldsGrouping([])

    def test_describe_mentions_fields(self):
        assert "user" in FieldsGrouping(["user"]).describe()


class TestShuffleGrouping:
    def test_round_robin_even_distribution(self):
        g = ShuffleGrouping()
        counts = Counter(g.select(_tup(x=i), 4)[0] for i in range(400))
        assert set(counts.values()) == {100}

    def test_single_delivery(self):
        g = ShuffleGrouping()
        assert len(g.select(_tup(x=1), 4)) == 1

    def test_deterministic_sequence(self):
        g = ShuffleGrouping()
        seq = [g.select(_tup(x=i), 3)[0] for i in range(6)]
        assert seq == [0, 1, 2, 0, 1, 2]


class TestGlobalGrouping:
    def test_always_worker_zero(self):
        g = GlobalGrouping()
        assert all(
            g.select(_tup(x=i), 8) == (0,) for i in range(20)
        )


class TestAllGrouping:
    def test_broadcast_to_every_worker(self):
        g = AllGrouping()
        assert g.select(_tup(x=1), 5) == (0, 1, 2, 3, 4)

    def test_single_worker(self):
        assert AllGrouping().select(_tup(x=1), 1) == (0,)
