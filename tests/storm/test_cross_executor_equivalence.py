"""Cross-executor equivalence: Local == Threaded == Process.

The substrate's contract is that all three executors honour identical
grouping semantics.  A purpose-built topology makes the contract exact —
every piece of state is owned by one fields-grouped key (single writer
per key), so top-N output, acked-tuple counts, and counter totals are
fully deterministic under thread interleaving *and* across process
boundaries.

Three proofs, each over a seeded 10k-action stream:

* clean run — byte-identical top-N, per-component processed counts, and
  ``counter_totals()`` across all three executors;
* chaos run — ``wrap_topology`` fault injection crashes the aggregate
  bolt on a fixed cadence; the supervised restarts land at the same
  points everywhere, so outputs and restart counts still match exactly;
* shared-arena SGD — workers in different *processes* write factor
  vectors through a :class:`SharedModelState`; the learned vectors and
  predictions must be byte-identical to the single-process run.
"""

import random

import numpy as np
import pytest

from repro.config import MFConfig
from repro.core import MFModel, SharedModelState
from repro.obs import Observability
from repro.reliability import FaultPlan, RetryPolicy, Supervisor, wrap_topology
from repro.storm import (
    Bolt,
    LocalExecutor,
    ProcessExecutor,
    Spout,
    StreamTuple,
    ThreadedExecutor,
    TopologyBuilder,
)

pytestmark = pytest.mark.multiprocess

EXECUTORS = pytest.mark.parametrize(
    "executor_cls",
    [LocalExecutor, ThreadedExecutor, ProcessExecutor],
    ids=["local", "threaded", "process"],
)

N_ACTIONS = 10_000
N_KEYS = 23
TOP_N = 5
STREAM_SEED = 2016


class _SeededActionSpout(Spout):
    """Deterministic pseudo-random action stream, identical per seed."""

    def __init__(self) -> None:
        self._rng = random.Random(STREAM_SEED)
        self._i = 0

    def next_tuple(self) -> StreamTuple | None:
        if self._i >= N_ACTIONS:
            return None
        self._i += 1
        return StreamTuple(
            {
                "k": self._rng.randrange(N_KEYS),
                "v": self._rng.randrange(1000),
            }
        )


class _AggregateBolt(Bolt):
    """Per-key running sum; fields grouping gives one writer per key."""

    def __init__(self, registry) -> None:
        self._sums: dict[int, int] = {}
        self._acked = registry.counter(
            "equiv_acked_total", "tuples acked by the aggregate stage"
        )

    def process(self, tup, collector):
        k = tup["k"]
        self._sums[k] = self._sums.get(k, 0) + tup["v"]
        self._acked.inc()
        collector.emit({"k": k, "sum": self._sums[k]})

    def state_snapshot(self) -> dict[int, int]:
        return dict(self._sums)


class _RankBolt(Bolt):
    """Latest sum per key; per-key FIFO makes 'latest' well-defined."""

    def __init__(self) -> None:
        self._latest: dict[int, int] = {}

    def process(self, tup, collector):
        self._latest[tup["k"]] = tup["sum"]

    def state_snapshot(self) -> dict[int, int]:
        return dict(self._latest)


def _merged_state(executor, component: str) -> dict:
    merged: dict = {}
    for (name, _worker), state in executor.bolt_states.items():
        if name == component and state:
            merged.update(state)
    return merged


def _run(executor_cls, chaos: bool = False):
    obs = Observability.create()
    builder = TopologyBuilder()
    builder.set_spout("spout", _SeededActionSpout)
    builder.set_bolt(
        "aggregate", lambda: _AggregateBolt(obs.registry), parallelism=3
    ).fields_grouping("spout", ["k"])
    builder.set_bolt("rank", _RankBolt, parallelism=2).fields_grouping(
        "aggregate", ["k"]
    )
    topology = builder.build()

    supervisor = None
    if chaos:
        plan = FaultPlan(seed=3, crash_every={"aggregate": 400})
        topology = wrap_topology(topology, plan, ["aggregate"])
        supervisor = Supervisor(
            RetryPolicy(max_restarts=100, backoff_base=0.0)
        )

    executor = executor_cls(topology, obs=obs, supervisor=supervisor)
    if executor_cls is LocalExecutor:
        metrics = executor.run()
    else:
        metrics = executor.run(timeout=120)

    latest = _merged_state(executor, "rank")
    top_n = sorted(latest.items(), key=lambda kv: (-kv[1], kv[0]))[:TOP_N]
    return {
        "top_n": top_n,
        "sums": _merged_state(executor, "aggregate"),
        "totals": obs.registry.counter_totals(),
        "snapshot": metrics.snapshot(),
    }


def _expected_sums() -> dict[int, int]:
    rng = random.Random(STREAM_SEED)
    sums: dict[int, int] = {}
    for _ in range(N_ACTIONS):
        k, v = rng.randrange(N_KEYS), rng.randrange(1000)
        sums[k] = sums.get(k, 0) + v
    return sums


class TestCleanStream:
    @pytest.fixture(scope="class")
    def runs(self):
        return {
            cls.__name__: _run(cls)
            for cls in (LocalExecutor, ThreadedExecutor, ProcessExecutor)
        }

    def test_top_n_identical(self, runs):
        local, threaded, process = runs.values()
        assert local["top_n"] == threaded["top_n"] == process["top_n"]
        expected = _expected_sums()
        assert local["top_n"] == sorted(
            expected.items(), key=lambda kv: (-kv[1], kv[0])
        )[:TOP_N]

    def test_aggregate_state_identical(self, runs):
        local, threaded, process = runs.values()
        assert local["sums"] == threaded["sums"] == process["sums"]
        assert local["sums"] == _expected_sums()

    def test_acked_counts_identical(self, runs):
        local, threaded, process = runs.values()
        for run in (local, threaded, process):
            snap = run["snapshot"]
            assert snap["aggregate"]["processed"] == N_ACTIONS
            assert snap["rank"]["processed"] == N_ACTIONS
            assert snap["aggregate"]["failed"] == 0
            assert run["totals"]["equiv_acked_total"] == N_ACTIONS

    def test_counter_totals_identical(self, runs):
        local, threaded, process = runs.values()
        assert (
            local["totals"] == threaded["totals"] == process["totals"]
        )
        # Pin absolutes so equality can't pass vacuously.
        assert (
            local["totals"]["storm_tuples_processed_total{component=aggregate}"]
            == N_ACTIONS
        )


class TestChaosStream:
    """Fault injection must not break cross-executor determinism.

    The chaos wrapper crashes the aggregate bolt every 400th tuple per
    worker; the supervisor restarts it with a fresh instance.  Restart
    points depend only on per-worker tuple order, which fields grouping
    fixes, so all three executors crash at the same tuples, restart the
    same number of times, and produce identical output.
    """

    @pytest.fixture(scope="class")
    def runs(self):
        return {
            cls.__name__: _run(cls, chaos=True)
            for cls in (LocalExecutor, ThreadedExecutor, ProcessExecutor)
        }

    def test_chaos_outputs_identical(self, runs):
        local, threaded, process = runs.values()
        assert local["top_n"] == threaded["top_n"] == process["top_n"]
        assert local["sums"] == threaded["sums"] == process["sums"]
        assert local["totals"] == threaded["totals"] == process["totals"]

    def test_restarts_happened_and_agree(self, runs):
        local, threaded, process = runs.values()
        restarts = {
            name: run["snapshot"]["aggregate"]["restarts"]
            for name, run in runs.items()
        }
        assert len(set(restarts.values())) == 1, restarts
        assert local["snapshot"]["aggregate"]["restarts"] > 0

    def test_no_tuples_lost_under_chaos(self, runs):
        for run in runs.values():
            assert run["snapshot"]["rank"]["processed"] == N_ACTIONS


# --------------------------------------------------------------------------
# Shared-arena SGD: real model updates from worker processes.
# --------------------------------------------------------------------------

SGD_F = 8
SGD_GROUPS = 4
SGD_STEPS = 800


class _SgdSpout(Spout):
    """Seeded (group, user, video, rating) actions; groups are disjoint
    entity universes so fields grouping by ``g`` preserves the
    single-writer-per-key invariant for users *and* videos."""

    def __init__(self) -> None:
        self._rng = random.Random(7)
        self._i = 0

    def next_tuple(self) -> StreamTuple | None:
        if self._i >= SGD_STEPS:
            return None
        self._i += 1
        g = self._rng.randrange(SGD_GROUPS)
        return StreamTuple(
            {
                "g": g,
                "u": f"g{g}-u{self._rng.randrange(10)}",
                "v": f"g{g}-v{self._rng.randrange(20)}",
                "r": float(self._rng.randrange(2)),
            }
        )


class _SgdBolt(Bolt):
    def __init__(self, state: SharedModelState) -> None:
        self._state = state
        self._model: MFModel | None = None

    def prepare(self, ctx) -> None:
        self._model = MFModel(MFConfig(f=SGD_F, seed=11), shared=self._state)

    def process(self, tup, collector):
        self._model.sgd_step(tup["u"], tup["v"], tup["r"], eta=0.05)


def _run_sgd(executor_cls):
    state = SharedModelState.create(f=SGD_F)
    try:
        # Freeze mu up front: the global-mean accumulator is the one
        # piece of cross-group shared state, so updating it mid-stream
        # would make results depend on inter-group ordering.
        state.mu_set(300.0, 600)
        builder = TopologyBuilder()
        builder.set_spout("spout", _SgdSpout)
        builder.set_bolt(
            "sgd", lambda: _SgdBolt(state), parallelism=SGD_GROUPS
        ).fields_grouping("spout", ["g"])
        executor = executor_cls(builder.build())
        if executor_cls is LocalExecutor:
            executor.run()
        else:
            executor.run(timeout=120)

        model = MFModel(MFConfig(f=SGD_F, seed=11), shared=state)
        users = sorted(state.user.ids())
        videos = sorted(state.video.ids())
        vectors = {u: model.user_vector(u) for u in users}
        predictions = {
            u: model.predict_many(u, videos[:10]) for u in users[:5]
        }
        return vectors, predictions
    finally:
        state.unlink()


class TestSharedArenaSgd:
    def test_process_sgd_matches_local_byte_for_byte(self):
        local_vecs, local_preds = _run_sgd(LocalExecutor)
        proc_vecs, proc_preds = _run_sgd(ProcessExecutor)
        assert sorted(local_vecs) == sorted(proc_vecs)
        for u in local_vecs:
            assert np.array_equal(local_vecs[u], proc_vecs[u]), u
        for u in local_preds:
            assert np.array_equal(local_preds[u], proc_preds[u]), u
