"""Failure-injection tests: partial component failures must not corrupt
the rest of the stream (fail_fast=False mode)."""

import pytest

from repro.storm import (
    Bolt,
    LocalExecutor,
    Spout,
    StreamTuple,
    ThreadedExecutor,
    TopologyBuilder,
)


class RangeSpout(Spout):
    def __init__(self, n):
        self.n = n
        self.pos = 0

    def next_tuple(self):
        if self.pos >= self.n:
            return None
        tup = StreamTuple({"i": self.pos})
        self.pos += 1
        return tup


class FlakyBolt(Bolt):
    """Fails on every third tuple, forwards the rest."""

    def process(self, tup, collector):
        if tup["i"] % 3 == 0:
            raise RuntimeError(f"injected failure at {tup['i']}")
        collector.emit({"i": tup["i"]})


class SinkBolt(Bolt):
    store: list

    def __init__(self, store):
        self.store = store

    def process(self, tup, collector):
        self.store.append(tup["i"])


@pytest.mark.parametrize("executor_cls", [LocalExecutor, ThreadedExecutor])
class TestPartialFailures:
    def test_surviving_tuples_flow_through(self, executor_cls):
        sink = []
        builder = TopologyBuilder()
        spout = RangeSpout(30)
        builder.set_spout("src", lambda: spout)
        builder.set_bolt("flaky", FlakyBolt).shuffle_grouping("src")
        builder.set_bolt("sink", lambda: SinkBolt(sink)).shuffle_grouping("flaky")
        metrics = executor_cls(builder.build(), fail_fast=False).run()

        expected = [i for i in range(30) if i % 3 != 0]
        assert sorted(sink) == expected
        snap = metrics.snapshot()
        assert snap["flaky"]["failed"] == 10
        assert snap["flaky"]["processed"] == 20
        assert snap["sink"]["failed"] == 0

    def test_downstream_of_failure_not_poisoned(self, executor_cls):
        """A failure must drop only that tuple, not wedge the worker."""
        sink = []
        builder = TopologyBuilder()
        spout = RangeSpout(9)
        builder.set_spout("src", lambda: spout)
        builder.set_bolt("flaky", FlakyBolt, parallelism=1).shuffle_grouping("src")
        builder.set_bolt("sink", lambda: SinkBolt(sink)).shuffle_grouping("flaky")
        executor_cls(builder.build(), fail_fast=False).run()
        # tuple 8 (late, after several failures) still arrives
        assert 8 in sink
