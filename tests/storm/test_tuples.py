"""Tests for stream tuples."""

import pytest

from repro.storm import DEFAULT_STREAM, StreamTuple


class TestStreamTuple:
    def test_field_access(self):
        t = StreamTuple({"user": "u1", "video": "v2"})
        assert t["user"] == "u1"
        assert t["video"] == "v2"

    def test_default_stream(self):
        assert StreamTuple({"a": 1}).stream == DEFAULT_STREAM

    def test_custom_stream(self):
        assert StreamTuple({"a": 1}, stream="pairs").stream == "pairs"

    def test_missing_field_raises(self):
        t = StreamTuple({"a": 1})
        with pytest.raises(KeyError):
            t["b"]

    def test_empty_tuple_rejected(self):
        with pytest.raises(ValueError):
            StreamTuple({})

    def test_immutability(self):
        t = StreamTuple({"a": 1})
        with pytest.raises(TypeError):
            t._values["a"] = 2  # type: ignore[index]

    def test_mapping_interface(self):
        t = StreamTuple({"a": 1, "b": 2})
        assert len(t) == 2
        assert set(t) == {"a", "b"}
        assert dict(t) == {"a": 1, "b": 2}
        assert t.get("c") is None

    def test_select_projects_in_order(self):
        t = StreamTuple({"a": 1, "b": 2, "c": 3})
        assert t.select(("c", "a")) == (3, 1)

    def test_select_missing_field_raises(self):
        t = StreamTuple({"a": 1})
        with pytest.raises(KeyError):
            t.select(("a", "zz"))

    def test_with_fields_creates_new_tuple(self):
        t = StreamTuple({"a": 1}, stream="s")
        t2 = t.with_fields(b=2, a=10)
        assert t2["a"] == 10
        assert t2["b"] == 2
        assert t2.stream == "s"
        assert t["a"] == 1  # original unchanged

    def test_equality_includes_stream(self):
        a = StreamTuple({"x": 1}, stream="s1")
        b = StreamTuple({"x": 1}, stream="s1")
        c = StreamTuple({"x": 1}, stream="s2")
        assert a == b
        assert a != c

    def test_hashable(self):
        a = StreamTuple({"x": 1})
        b = StreamTuple({"x": 1})
        assert len({a, b}) == 1

    def test_repr_mentions_fields(self):
        assert "user='u1'" in repr(StreamTuple({"user": "u1"}))
