"""Tests for both executors: delivery semantics, grouping honoured,
multi-stage pipelines, failure handling, metrics."""

import threading

import pytest

from repro.errors import ComponentError
from repro.storm import (
    Bolt,
    Collector,
    LocalExecutor,
    Spout,
    StreamTuple,
    ThreadedExecutor,
    TopologyBuilder,
)


class ListSpout(Spout):
    """Emits one tuple per item of a shared list."""

    def __init__(self, items):
        self._items = list(items)
        self._pos = 0

    def next_tuple(self):
        if self._pos >= len(self._items):
            return None
        item = self._items[self._pos]
        self._pos += 1
        return StreamTuple({"value": item})


class CollectBolt(Bolt):
    """Appends every received value to a shared, lock-protected list."""

    sink: list
    lock = threading.Lock()

    def __init__(self, sink, worker_tag=None):
        self.sink = sink
        self.worker_index = None

    def prepare(self, ctx):
        self.worker_index = ctx.worker_index

    def process(self, tup, collector):
        with CollectBolt.lock:
            self.sink.append((self.worker_index, tup["value"]))


class DoubleBolt(Bolt):
    """Emits value*2 downstream."""

    def process(self, tup, collector):
        collector.emit({"value": tup["value"] * 2})


class ExplodingBolt(Bolt):
    def process(self, tup, collector):
        raise RuntimeError("boom")


def _simple_topology(items, sink, parallelism=1):
    builder = TopologyBuilder()
    spout = ListSpout(items)
    builder.set_spout("src", lambda: spout)
    builder.set_bolt(
        "collect", lambda: CollectBolt(sink), parallelism=parallelism
    ).shuffle_grouping("src")
    return builder.build()


@pytest.mark.parametrize("executor_cls", [LocalExecutor, ThreadedExecutor])
class TestDelivery:
    def test_every_tuple_delivered_once(self, executor_cls):
        sink = []
        topo = _simple_topology(range(100), sink)
        executor_cls(topo).run()
        assert sorted(v for _, v in sink) == list(range(100))

    def test_two_stage_pipeline(self, executor_cls):
        sink = []
        builder = TopologyBuilder()
        spout = ListSpout(range(50))
        builder.set_spout("src", lambda: spout)
        builder.set_bolt("double", DoubleBolt).shuffle_grouping("src")
        builder.set_bolt("collect", lambda: CollectBolt(sink)).shuffle_grouping(
            "double"
        )
        executor_cls(builder.build()).run()
        assert sorted(v for _, v in sink) == [2 * i for i in range(50)]

    def test_fields_grouping_single_worker_per_key(self, executor_cls):
        sink = []
        builder = TopologyBuilder()
        items = [f"key{i % 7}" for i in range(140)]
        spout = ListSpout(items)
        builder.set_spout("src", lambda: spout)
        builder.set_bolt(
            "collect", lambda: CollectBolt(sink), parallelism=4
        ).fields_grouping("src", ["value"])
        executor_cls(builder.build()).run()
        workers_per_key = {}
        for worker, value in sink:
            workers_per_key.setdefault(value, set()).add(worker)
        assert all(len(ws) == 1 for ws in workers_per_key.values())
        assert len(sink) == 140

    def test_fanout_to_multiple_bolts(self, executor_cls):
        sink_a, sink_b = [], []
        builder = TopologyBuilder()
        spout = ListSpout(range(30))
        builder.set_spout("src", lambda: spout)
        builder.set_bolt("a", lambda: CollectBolt(sink_a)).shuffle_grouping("src")
        builder.set_bolt("b", lambda: CollectBolt(sink_b)).shuffle_grouping("src")
        executor_cls(builder.build()).run()
        assert len(sink_a) == 30
        assert len(sink_b) == 30

    def test_metrics_counts(self, executor_cls):
        sink = []
        topo = _simple_topology(range(25), sink)
        metrics = executor_cls(topo).run()
        snap = metrics.snapshot()
        assert snap["src"]["emitted"] == 25
        assert snap["collect"]["processed"] == 25
        assert snap["collect"]["failed"] == 0
        assert snap["collect"]["mean_latency_s"] >= 0

    def test_fail_fast_raises_component_error(self, executor_cls):
        builder = TopologyBuilder()
        spout = ListSpout(range(5))
        builder.set_spout("src", lambda: spout)
        builder.set_bolt("bad", ExplodingBolt).shuffle_grouping("src")
        with pytest.raises(ComponentError, match="bad"):
            executor_cls(builder.build(), fail_fast=True).run()

    def test_fail_soft_counts_failures(self, executor_cls):
        builder = TopologyBuilder()
        spout = ListSpout(range(5))
        builder.set_spout("src", lambda: spout)
        builder.set_bolt("bad", ExplodingBolt).shuffle_grouping("src")
        metrics = executor_cls(builder.build(), fail_fast=False).run()
        assert metrics.snapshot()["bad"]["failed"] == 5


class TestLocalExecutorSpecifics:
    def test_deterministic_worker_assignment(self):
        """Two identical runs produce identical (worker, value) sequences."""
        runs = []
        for _ in range(2):
            sink = []
            topo = _simple_topology(range(40), sink, parallelism=3)
            LocalExecutor(topo).run()
            runs.append(sink)
        assert runs[0] == runs[1]

    def test_max_tuples_caps_consumption(self):
        sink = []
        topo = _simple_topology(range(100), sink)
        LocalExecutor(topo).run(max_tuples=10)
        assert len(sink) == 10

    def test_spout_lifecycle_hooks(self):
        events = []

        class HookSpout(Spout):
            def open(self, ctx):
                events.append("open")

            def next_tuple(self):
                return None

            def close(self):
                events.append("close")

        class HookBolt(Bolt):
            def prepare(self, ctx):
                events.append("prepare")

            def process(self, tup, collector):  # pragma: no cover
                pass

            def cleanup(self):
                events.append("cleanup")

        builder = TopologyBuilder()
        builder.set_spout("s", HookSpout)
        builder.set_bolt("b", HookBolt).shuffle_grouping("s")
        LocalExecutor(builder.build()).run()
        assert events == ["open", "prepare", "close", "cleanup"]


class TestThreadedExecutorSpecifics:
    def test_parallel_workers_all_used(self):
        """With shuffle grouping and enough tuples, all workers see work."""
        sink = []
        topo = _simple_topology(range(200), sink, parallelism=4)
        metrics = ThreadedExecutor(topo).run()
        per_worker = metrics.component("collect").per_worker_processed
        assert len(per_worker) == 4
        assert sum(per_worker.values()) == 200

    def test_timeout_returns(self):
        class EndlessSpout(Spout):
            def next_tuple(self):
                return StreamTuple({"value": 1})

        sink = []
        builder = TopologyBuilder()
        builder.set_spout("src", EndlessSpout)
        builder.set_bolt("collect", lambda: CollectBolt(sink)).shuffle_grouping(
            "src"
        )
        executor = ThreadedExecutor(builder.build())
        executor.run(timeout=0.3)  # must return, not hang
        assert sink  # processed something before the deadline
