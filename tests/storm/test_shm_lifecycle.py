"""Shared-memory lifecycle under process death.

POSIX shared memory outlives processes, so leaks are the default failure
mode: a worker that dies without cleanup would strand ``/dev/shm``
segments until reboot.  The arena's answer is (a) only the *owner*
unlinks, via a finalizer doubled with atexit, and (b) the cross-process
lock is an flock the kernel releases on process death — so a SIGKILLed
worker can never leave the arena wedged or leaking.

These tests kill real subprocesses (no signal handlers, no cleanup) at
awkward moments and assert both properties, using the ACK-on-stdout
victim harness pattern from the crash-injection suite.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core import SharedFactorArena

pytestmark = [pytest.mark.multiprocess, pytest.mark.slow]

CHILD = Path(__file__).parent / "_shm_child.py"


def _shm_entries() -> set[str]:
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux
        pytest.skip("/dev/shm not available")
    return {name for name in os.listdir("/dev/shm") if "repro-" in name}


def _spawn(*args: str) -> subprocess.Popen:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, str(CHILD), *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )


def _read_acks(proc: subprocess.Popen, at_least: int, timeout: float = 30.0):
    """Read stdout lines until ``at_least`` ACKs arrive; return them."""
    acks = []
    deadline = time.monotonic() + timeout
    while len(acks) < at_least:
        if time.monotonic() > deadline:  # pragma: no cover - debug aid
            raise TimeoutError(f"only {len(acks)} acks before timeout")
        line = proc.stdout.readline()
        if not line:
            raise AssertionError(
                f"child exited early: {proc.stderr.read()}"
            )
        if line.startswith("ACK "):
            acks.append(int(line.split()[1]))
    return acks


class TestSigkilledWorker:
    def test_arena_survives_sigkilled_writer(self):
        """SIGKILL a worker mid-write: no leak, no deadlock, no damage."""
        before = _shm_entries()
        arena = SharedFactorArena(f=4, initial_capacity=8)
        try:
            proc = _spawn("attach-write", arena.name)
            try:
                acks = _read_acks(proc, at_least=20)
                os.kill(proc.pid, signal.SIGKILL)
                proc.wait(timeout=10)
            finally:
                if proc.poll() is None:  # pragma: no cover - safety net
                    proc.kill()
                    proc.wait(timeout=10)

            # The kernel dropped the victim's flock with it: every lock
            # path must still go through without blocking.
            arena.put("after-kill", np.full(4, 9.0), 9.0)
            assert np.array_equal(arena.vector("after-kill"), np.full(4, 9.0))
            # Every acked write is visible and well-formed.
            last = max(acks)
            row = arena.vector(f"victim-{last % 50}")
            assert row is not None
            snap = arena.snapshot()
            assert len(snap) == len(arena)
        finally:
            arena.unlink()
        # The victim attached (never owned), so its death plus the
        # owner's unlink must leave /dev/shm exactly as it started.
        assert _shm_entries() == before

    def test_sigkill_during_growth_pressure(self):
        """Kill while the victim is forcing growth generations."""
        before = _shm_entries()
        arena = SharedFactorArena(f=4, initial_capacity=1, ids_capacity=64)
        try:
            proc = _spawn("attach-write", arena.name)
            try:
                _read_acks(proc, at_least=5)
                os.kill(proc.pid, signal.SIGKILL)
                proc.wait(timeout=10)
            finally:
                if proc.poll() is None:  # pragma: no cover - safety net
                    proc.kill()
                    proc.wait(timeout=10)
            # Stale generations must have been unlinked as they were
            # superseded; whatever the victim created, only the live
            # ctl + data + ids + lock entries remain after unlink.
            for i in range(40):
                arena.put(f"post-{i}", np.zeros(4), 0.0)
        finally:
            arena.unlink()
        assert _shm_entries() == before


class TestOwnerExit:
    def test_owner_atexit_reaps_segments(self):
        """An owner that exits without unlink() must still clean up."""
        before = _shm_entries()
        proc = _spawn("owner-exit")
        out, err = proc.communicate(timeout=30)
        assert proc.returncode == 0, err
        name_lines = [l for l in out.splitlines() if l.startswith("NAME ")]
        assert name_lines, out
        name = name_lines[0].split()[1]
        assert _shm_entries() == before
        with pytest.raises(FileNotFoundError):
            SharedFactorArena.attach(name)


class TestTornWrites:
    def test_snapshots_never_observe_torn_rows(self):
        """Concurrent snapshots see each row fully-written or not at all.

        The victim rewrites one row with ``full(f, i)``/bias ``i`` per
        iteration; row writes happen under the arena lock, so a snapshot
        taken at any moment must observe a uniform vector whose value
        matches its bias.
        """
        arena = SharedFactorArena(f=16, initial_capacity=8)
        try:
            proc = _spawn("torn-writer", arena.name)
            try:
                _read_acks(proc, at_least=1)
                checked = 0
                for _ in range(200):
                    snap = arena.snapshot()
                    vec = snap.vector("u0")
                    if vec is None:
                        continue
                    assert vec.min() == vec.max(), vec
                    assert snap.bias("u0") == vec[0]
                    checked += 1
                assert checked > 0
            finally:
                proc.kill()
                proc.wait(timeout=10)
        finally:
            arena.unlink()
