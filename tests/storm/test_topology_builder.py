"""Tests for topology declaration and validation."""

import pytest

from repro.errors import TopologyError
from repro.storm import (
    Bolt,
    Collector,
    Spout,
    StreamTuple,
    TopologyBuilder,
)


class NullSpout(Spout):
    def next_tuple(self):
        return None


class EchoBolt(Bolt):
    def process(self, tup: StreamTuple, collector: Collector) -> None:
        collector.emit(dict(tup))


def test_minimal_topology_builds():
    builder = TopologyBuilder()
    builder.set_spout("src", NullSpout)
    builder.set_bolt("echo", EchoBolt).shuffle_grouping("src")
    topo = builder.build()
    assert {s.name for s in topo.spouts} == {"src"}
    assert {b.name for b in topo.bolts} == {"echo"}


def test_no_spout_rejected():
    builder = TopologyBuilder()
    builder.set_bolt("b", EchoBolt).shuffle_grouping("b2")
    builder.set_bolt("b2", EchoBolt).shuffle_grouping("b")
    with pytest.raises(TopologyError, match="at least one spout"):
        builder.build()


def test_duplicate_names_rejected():
    builder = TopologyBuilder()
    builder.set_spout("x", NullSpout)
    with pytest.raises(TopologyError, match="duplicate"):
        builder.set_bolt("x", EchoBolt)


def test_unknown_source_rejected():
    builder = TopologyBuilder()
    builder.set_spout("src", NullSpout)
    builder.set_bolt("b", EchoBolt).shuffle_grouping("ghost")
    with pytest.raises(TopologyError, match="unknown component"):
        builder.build()


def test_self_subscription_rejected():
    builder = TopologyBuilder()
    builder.set_spout("src", NullSpout)
    builder.set_bolt("b", EchoBolt).shuffle_grouping("b")
    with pytest.raises(TopologyError, match="itself"):
        builder.build()


def test_unsubscribed_bolt_rejected():
    builder = TopologyBuilder()
    builder.set_spout("src", NullSpout)
    builder.set_bolt("orphan", EchoBolt)
    with pytest.raises(TopologyError, match="no input"):
        builder.build()


def test_nonpositive_parallelism_rejected():
    builder = TopologyBuilder()
    with pytest.raises(TopologyError, match="parallelism"):
        builder.set_spout("src", NullSpout, parallelism=0)


def test_routes_resolve_per_stream():
    builder = TopologyBuilder()
    builder.set_spout("src", NullSpout)
    builder.set_bolt("a", EchoBolt).shuffle_grouping("src", stream="s1")
    builder.set_bolt("b", EchoBolt).shuffle_grouping("src", stream="s2")
    topo = builder.build()
    assert [t for t, _ in topo.targets("src", "s1")] == ["a"]
    assert [t for t, _ in topo.targets("src", "s2")] == ["b"]
    assert topo.targets("src", "s3") == []


def test_multiple_subscribers_same_stream():
    builder = TopologyBuilder()
    builder.set_spout("src", NullSpout)
    builder.set_bolt("a", EchoBolt).shuffle_grouping("src")
    builder.set_bolt("b", EchoBolt).fields_grouping("src", ["x"])
    topo = builder.build()
    assert {t for t, _ in topo.targets("src", "default")} == {"a", "b"}


def test_describe_lists_components_and_edges():
    builder = TopologyBuilder()
    builder.set_spout("src", NullSpout, parallelism=2)
    builder.set_bolt("b", EchoBolt, parallelism=3).fields_grouping("src", ["k"])
    text = builder.build().describe()
    assert "src [spout x2]" in text
    assert "b [bolt x3]" in text
    assert "FieldsGrouping(k)" in text
