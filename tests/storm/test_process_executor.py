"""Unit tests for :class:`ProcessExecutor`.

Mechanics only — the cross-executor contract lives in
``test_cross_executor_equivalence.py``.  Everything here runs real child
processes, so the module is marked ``multiprocess``.
"""

import pickle

import pytest

from repro.errors import ComponentError
from repro.reliability import RetryPolicy, Supervisor
from repro.storm import (
    Bolt,
    Collector,
    ProcessExecutor,
    Spout,
    StreamTuple,
    TopologyBuilder,
)

pytestmark = pytest.mark.multiprocess


class _CountSpout(Spout):
    def __init__(self, n: int = 20) -> None:
        self._n = n
        self._i = 0

    def next_tuple(self) -> StreamTuple | None:
        if self._i >= self._n:
            return None
        tup = StreamTuple({"k": self._i % 3, "v": self._i})
        self._i += 1
        return tup


class _SumBolt(Bolt):
    def __init__(self) -> None:
        self._sums: dict[int, int] = {}

    def process(self, tup: StreamTuple, collector: Collector) -> None:
        k = tup["k"]
        self._sums[k] = self._sums.get(k, 0) + tup["v"]
        collector.emit({"k": k, "sum": self._sums[k]})

    def state_snapshot(self) -> dict[int, int]:
        return dict(self._sums)


class _SinkBolt(Bolt):
    def __init__(self) -> None:
        self._latest: dict[int, int] = {}

    def process(self, tup: StreamTuple, collector: Collector) -> None:
        self._latest[tup["k"]] = tup["sum"]

    def state_snapshot(self) -> dict[int, int]:
        return dict(self._latest)


class _BatchBolt(Bolt):
    """Buffers everything; emits only on end-of-stream flush."""

    def __init__(self) -> None:
        self._buffer: list[int] = []

    def process(self, tup: StreamTuple, collector: Collector) -> None:
        self._buffer.append(tup["v"])

    def flush(self, collector: Collector) -> None:
        if self._buffer:
            collector.emit({"k": 0, "sum": sum(self._buffer)})
            self._buffer.clear()


class _FailingBolt(Bolt):
    def process(self, tup: StreamTuple, collector: Collector) -> None:
        if tup["v"] == 7:
            raise RuntimeError("boom at seven")
        collector.emit({"k": tup["k"], "sum": tup["v"]})


def _topology(bolt_factory=_SumBolt, parallelism=2):
    builder = TopologyBuilder()
    builder.set_spout("spout", _CountSpout)
    builder.set_bolt(
        "work", bolt_factory, parallelism=parallelism
    ).fields_grouping("spout", ["k"])
    builder.set_bolt("sink", _SinkBolt, parallelism=2).fields_grouping(
        "work", ["k"]
    )
    return builder.build()


def test_stream_tuple_pickles_without_trace():
    tup = StreamTuple({"a": 1, "b": "x"}, stream="s").with_trace(object())
    clone = pickle.loads(pickle.dumps(tup))
    assert clone == tup
    assert clone.stream == "s"
    assert clone.trace is None  # trace metadata is process-local


def test_processes_all_tuples_and_merges_metrics():
    executor = ProcessExecutor(_topology())
    metrics = executor.run(timeout=60)
    snap = metrics.snapshot()
    assert snap["spout"]["emitted"] == 20
    assert snap["work"]["processed"] == 20
    assert snap["work"]["emitted"] == 20
    assert snap["sink"]["processed"] == 20
    assert snap["work"]["failed"] == 0


def test_bolt_states_come_home():
    executor = ProcessExecutor(_topology())
    executor.run(timeout=60)
    work_states = {
        worker: state
        for (name, worker), state in executor.bolt_states.items()
        if name == "work"
    }
    merged: dict[int, int] = {}
    for state in work_states.values():
        merged.update(state)
    expected: dict[int, int] = {}
    for i in range(20):
        expected[i % 3] = expected.get(i % 3, 0) + i
    assert merged == expected
    # Per-key state must live in exactly one worker (single writer).
    for k in expected:
        owners = [w for w, state in work_states.items() if k in state]
        assert len(owners) == 1


def test_max_tuples_limits_source_consumption():
    executor = ProcessExecutor(_topology())
    metrics = executor.run(max_tuples=5, timeout=60)
    assert metrics.snapshot()["work"]["processed"] == 5


def test_flush_runs_in_declaration_order_across_processes():
    builder = TopologyBuilder()
    builder.set_spout("spout", _CountSpout)
    builder.set_bolt("batch", _BatchBolt, parallelism=1).fields_grouping(
        "spout", ["k"]
    )
    builder.set_bolt("sink", _SinkBolt, parallelism=1).fields_grouping(
        "batch", ["k"]
    )
    executor = ProcessExecutor(builder.build())
    executor.run(timeout=60)
    # The batch bolt's flush emission must have reached the sink before
    # the sink's own shutdown snapshot was taken.
    assert executor.bolt_states[("sink", 0)] == {0: sum(range(20))}


def test_fail_fast_raises_component_error():
    builder = TopologyBuilder()
    builder.set_spout("spout", _CountSpout)
    builder.set_bolt("work", _FailingBolt, parallelism=2).fields_grouping(
        "spout", ["k"]
    )
    executor = ProcessExecutor(builder.build(), fail_fast=True)
    with pytest.raises(ComponentError) as excinfo:
        executor.run(timeout=60)
    assert excinfo.value.component == "work"
    assert "boom at seven" in str(excinfo.value)


def test_fail_fast_false_drops_and_continues():
    builder = TopologyBuilder()
    builder.set_spout("spout", _CountSpout)
    builder.set_bolt("work", _FailingBolt, parallelism=2).fields_grouping(
        "spout", ["k"]
    )
    builder.set_bolt("sink", _SinkBolt, parallelism=1).fields_grouping(
        "work", ["k"]
    )
    executor = ProcessExecutor(builder.build(), fail_fast=False)
    metrics = executor.run(timeout=60)
    snap = metrics.snapshot()
    assert snap["work"]["failed"] == 1
    assert snap["sink"]["processed"] == 19  # all but the poisoned tuple


def test_supervisor_restarts_worker_in_child_process():
    crashes = _topology(bolt_factory=_FailingBolt, parallelism=1)
    supervisor = Supervisor(RetryPolicy(max_restarts=3, backoff_base=0.0))
    executor = ProcessExecutor(crashes, supervisor=supervisor, fail_fast=False)
    metrics = executor.run(timeout=60)
    snap = metrics.snapshot()
    # The poisoned tuple crashes every fresh instance, so the budget
    # drains and the tuple is dropped; the restarts happened inside the
    # worker process and must surface in the merged metrics.
    assert snap["work"]["restarts"] == 3
    assert snap["sink"]["processed"] == 19


def test_supervisor_budget_exhaustion_fails_fast():
    crashes = _topology(bolt_factory=_FailingBolt, parallelism=1)
    supervisor = Supervisor(RetryPolicy(max_restarts=2, backoff_base=0.0))
    executor = ProcessExecutor(crashes, supervisor=supervisor, fail_fast=True)
    with pytest.raises(ComponentError):
        executor.run(timeout=60)


def test_per_worker_processed_attribution():
    executor = ProcessExecutor(_topology(parallelism=3))
    executor.run(timeout=60)
    per_worker = executor.metrics.component("work").per_worker_processed
    assert sum(per_worker.values()) == 20
    # Fields grouping: only workers that own keys processed anything.
    assert all(count > 0 for count in per_worker.values())
