"""Unit tests for topology metrics (latency stats, counters, snapshots)."""

import threading

import pytest

from repro.storm import ComponentMetrics, LatencyStats, TopologyMetrics


class TestLatencyStats:
    def test_empty(self):
        stats = LatencyStats()
        assert stats.mean == 0.0
        assert stats.max == 0.0
        assert stats.count == 0

    def test_record_accumulates(self):
        stats = LatencyStats()
        for value in (0.1, 0.3, 0.2):
            stats.record(value)
        assert stats.count == 3
        assert stats.mean == pytest.approx(0.2)
        assert stats.max == pytest.approx(0.3)


class TestComponentMetrics:
    def test_counters(self):
        metrics = ComponentMetrics("bolt")
        metrics.record_emit(3)
        metrics.record_processed(worker=0, seconds=0.01)
        metrics.record_processed(worker=1, seconds=0.02)
        metrics.record_failure()
        assert metrics.emitted == 3
        assert metrics.processed == 2
        assert metrics.failed == 1
        assert metrics.per_worker_processed == {0: 1, 1: 1}

    def test_thread_safety(self):
        metrics = ComponentMetrics("bolt")

        def work():
            for _ in range(500):
                metrics.record_processed(worker=0, seconds=0.001)
                metrics.record_emit()

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert metrics.processed == 2000
        assert metrics.emitted == 2000
        assert metrics.latency.count == 2000


class TestTopologyMetrics:
    def test_component_registry_is_stable(self):
        metrics = TopologyMetrics()
        a = metrics.component("a")
        assert metrics.component("a") is a

    def test_snapshot_shape(self):
        metrics = TopologyMetrics()
        metrics.component("x").record_processed(0, 0.5)
        snap = metrics.snapshot()
        assert snap["x"]["processed"] == 1
        assert snap["x"]["mean_latency_s"] == pytest.approx(0.5)
        assert snap["x"]["max_latency_s"] == pytest.approx(0.5)

    def test_total_processed(self):
        metrics = TopologyMetrics()
        metrics.component("a").record_processed(0, 0.1)
        metrics.component("b").record_processed(0, 0.1)
        assert metrics.total_processed == 2
