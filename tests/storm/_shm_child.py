"""Victim process for the shared-memory lifecycle suite (run via subprocess).

Modes, all acking progress on stdout so the parent can time its kill:

``attach-write``::

    python _shm_child.py attach-write <arena-name> [--limit N]

Attaches to an existing arena by name and hammers ``put`` in a loop,
printing ``ACK <i>`` after each write returns.  The parent SIGKILLs this
process mid-stream — there is no signal handler and no cleanup — then
verifies the arena is still lockable and intact, and that unlinking it
leaves no ``/dev/shm`` residue.  (The flock the kernel holds for this
process dies with it; a userspace lock would deadlock the parent.)

``owner-exit``::

    python _shm_child.py owner-exit

Creates an arena, writes one row, prints ``NAME <base>``, and exits
*without* calling ``unlink()``.  The owner's atexit/finalizer hook must
reap every segment, so the parent asserts the name is gone afterwards.

``torn-writer``::

    python _shm_child.py torn-writer <arena-name> [--limit N]

Attaches and rewrites one row with a uniform vector ``full(f, i)`` and
bias ``i`` per iteration, acking each.  The parent concurrently snapshots
and asserts every observed row is uniform with a matching bias — i.e.
snapshots never see a torn write.
"""

import argparse
import sys

import numpy as np

from repro.core import SharedFactorArena


def _ack(i: int) -> None:
    sys.stdout.write(f"ACK {i}\n")
    sys.stdout.flush()


def run_attach_write(name: str, limit: int) -> None:
    arena = SharedFactorArena.attach(name)
    f = arena.f
    for i in range(limit):
        arena.put(f"victim-{i % 50}", np.full(f, float(i)), float(i))
        _ack(i)


def run_owner_exit() -> None:
    arena = SharedFactorArena(f=4, initial_capacity=8)
    arena.put("row", np.ones(4), 1.0)
    sys.stdout.write(f"NAME {arena.name}\n")
    sys.stdout.flush()
    # Fall off the end: no unlink(), no close().  atexit must clean up.


def run_torn_writer(name: str, limit: int) -> None:
    arena = SharedFactorArena.attach(name)
    f = arena.f
    for i in range(limit):
        arena.put("u0", np.full(f, float(i)), float(i))
        _ack(i)


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument(
        "mode", choices=("attach-write", "owner-exit", "torn-writer")
    )
    parser.add_argument("name", nargs="?")
    parser.add_argument("--limit", type=int, default=1_000_000)
    args = parser.parse_args()
    if args.mode == "attach-write":
        run_attach_write(args.name, args.limit)
    elif args.mode == "owner-exit":
        run_owner_exit()
    else:
        run_torn_writer(args.name, args.limit)
    sys.stdout.write("DONE\n")
    sys.stdout.flush()


if __name__ == "__main__":
    main()
