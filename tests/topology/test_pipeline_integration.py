"""Integration tests: the full Figure 2 topology on both executors."""

import threading

import pytest

from repro.clock import VirtualClock
from repro.config import ReproConfig
from repro.storm import LocalExecutor, ThreadedExecutor
from repro.topology import (
    COMPUTE_MF,
    MF_STORAGE,
    RESULT_STORAGE,
    build_recommendation_topology,
)


@pytest.fixture(scope="module")
def train(small_split):
    return small_split.train


def _build(world, actions, clock=None, parallelism=None):
    return build_recommendation_topology(
        actions,
        world.videos,
        users=world.users,
        clock=clock or VirtualClock(0.0),
        parallelism=parallelism,
    )


class TestLocalRun:
    def test_processes_whole_stream(self, small_world, train):
        topo, system = _build(small_world, train)
        metrics = LocalExecutor(topo).run()
        snap = metrics.snapshot()
        assert snap["spout"]["emitted"] == len(train)
        assert snap["user_history"]["processed"] == len(train)
        assert snap[COMPUTE_MF]["processed"] == len(train)
        assert snap[MF_STORAGE]["failed"] == 0

    def test_state_populated(self, small_world, train):
        topo, system = _build(small_world, train)
        LocalExecutor(topo).run()
        assert system.model.n_users > 0
        assert system.model.n_videos > 0
        assert len(system.history) > 0
        assert system.table.tracked_videos()

    def test_mf_storage_writes_match_compute_emissions(self, small_world, train):
        topo, system = _build(small_world, train)
        metrics = LocalExecutor(topo).run()
        snap = metrics.snapshot()
        assert snap[MF_STORAGE]["processed"] == snap[COMPUTE_MF]["emitted"]

    def test_result_storage_two_writes_per_scored_pair(self, small_world, train):
        topo, system = _build(small_world, train)
        metrics = LocalExecutor(topo).run()
        snap = metrics.snapshot()
        assert snap[RESULT_STORAGE]["processed"] == snap["item_pair_sim"]["emitted"]
        assert snap[RESULT_STORAGE]["processed"] % 2 == 0

    def test_serving_recommender_sees_topology_state(self, small_world, train):
        clock = VirtualClock(0.0)
        topo, system = _build(small_world, train, clock=clock)
        LocalExecutor(topo).run()
        clock.set(max(a.timestamp for a in train) + 1)
        recommender = system.serving_recommender()
        active_user = next(iter(system.history._store.keys()))
        recs = recommender.recommend_ids(active_user, n=5)
        assert isinstance(recs, list)
        # the serving view shares the exact model state
        assert recommender.model.n_users == system.model.n_users


class TestThreadedRun:
    def test_threaded_processes_everything(self, small_world, train):
        topo, system = _build(
            small_world,
            train,
            parallelism={"spout": 2, COMPUTE_MF: 3, MF_STORAGE: 3},
        )
        metrics = ThreadedExecutor(topo).run(timeout=120.0)
        snap = metrics.snapshot()
        assert snap["spout"]["emitted"] == len(train)
        assert snap[COMPUTE_MF]["processed"] == len(train)
        assert snap[MF_STORAGE]["failed"] == 0
        assert system.model.n_users > 0

    def test_threaded_and_local_learn_the_same_entities(self, small_world, train):
        topo_l, system_l = _build(small_world, train)
        LocalExecutor(topo_l).run()
        topo_t, system_t = _build(small_world, train)
        ThreadedExecutor(topo_t).run(timeout=120.0)
        assert system_l.model.n_users == system_t.model.n_users
        assert system_l.model.n_videos == system_t.model.n_videos
        assert len(system_l.history) == len(system_t.history)


class TestSingleWriterInvariant:
    def test_no_concurrent_writes_to_same_key(self, small_world, train):
        """The paper's §5.1 claim: fields grouping from ComputeMF to
        MFStorage guarantees one worker per vector key, so writes are
        conflict-free.  We detect overlap with a per-key critical section
        that records any concurrent entry."""
        from repro.core.mf import MFModel

        violations = []
        in_flight: dict = {}
        guard = threading.Lock()

        class DetectingModel(MFModel):
            def put_user(self, user_id, x_u, b_u):
                self._checked_write(("user", user_id), super().put_user, user_id, x_u, b_u)

            def put_video(self, video_id, y_i, b_i):
                self._checked_write(("video", video_id), super().put_video, video_id, y_i, b_i)

            def _checked_write(self, key, fn, *args):
                with guard:
                    if in_flight.get(key):
                        violations.append(key)
                    in_flight[key] = True
                try:
                    fn(*args)
                finally:
                    with guard:
                        in_flight[key] = False

        topo, system = _build(
            small_world,
            train,
            parallelism={COMPUTE_MF: 4, MF_STORAGE: 4},
        )
        detecting = DetectingModel.__new__(DetectingModel)
        detecting.__dict__.update(system.model.__dict__)
        # Rebuild topology with the detecting model wired into MFStorage.
        from repro.storm import TopologyBuilder
        from repro.topology import ActionSpout, MFStorageBolt, SharedSource
        from repro.topology.bolts import ComputeMFBolt

        builder = TopologyBuilder()
        shared = SharedSource(train)
        builder.set_spout("spout", lambda: ActionSpout(shared))
        builder.set_bolt(
            "compute_mf",
            lambda: ComputeMFBolt(system.model, system.videos),
            parallelism=4,
        ).fields_grouping("spout", ["user"])
        storage = builder.set_bolt(
            "mf_storage", lambda: MFStorageBolt(detecting), parallelism=4
        )
        storage.fields_grouping("compute_mf", ["kind", "key"], stream="user_vec")
        storage.fields_grouping("compute_mf", ["kind", "key"], stream="video_vec")
        ThreadedExecutor(builder.build()).run(timeout=120.0)
        assert violations == []
