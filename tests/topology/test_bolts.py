"""Unit tests for the Figure 2 bolts."""

import numpy as np
import pytest

from repro.clock import VirtualClock
from repro.config import MFConfig, OnlineConfig, SimilarityConfig
from repro.core import MFModel, SimilarVideoTable, UserHistoryStore
from repro.core.variants import BINARY_MODEL, COMBINE_MODEL
from repro.data import ActionType, UserAction, Video
from repro.storm import Collector
from repro.topology import (
    PAIR_STREAM,
    SIM_STREAM,
    USER_VEC_STREAM,
    VIDEO_VEC_STREAM,
    ComputeMFBolt,
    GetItemPairsBolt,
    ItemPairSimBolt,
    MFStorageBolt,
    ResultStorageBolt,
    UserHistoryBolt,
)
from repro.topology import action_tuple

VIDEOS = {f"v{i}": Video(f"v{i}", "t", duration=1000.0) for i in range(5)}


def _click(user="u1", video="v1", ts=0.0):
    return action_tuple(UserAction(ts, user, video, ActionType.CLICK))


def _impress(user="u1", video="v1", ts=0.0):
    return action_tuple(UserAction(ts, user, video, ActionType.IMPRESS))


class TestComputeMFBolt:
    def _bolt(self, model=None):
        return ComputeMFBolt(
            model or MFModel(MFConfig(f=4, seed=1)),
            VIDEOS,
            variant=COMBINE_MODEL,
            online=OnlineConfig(eta0=0.01, alpha=0.01),
        )

    def test_positive_action_emits_two_vector_tuples(self):
        bolt = self._bolt()
        collector = Collector()
        bolt.process(_click(), collector)
        streams = [t.stream for t in collector.emitted]
        assert streams == [USER_VEC_STREAM, VIDEO_VEC_STREAM]
        user_tup = collector.emitted[0]
        assert user_tup["kind"] == "user"
        assert user_tup["key"] == "u1"
        assert user_tup["vector"].shape == (4,)

    def test_impression_emits_nothing(self):
        bolt = self._bolt()
        collector = Collector()
        bolt.process(_impress(), collector)
        assert collector.emitted == []

    def test_compute_does_not_write_vectors(self):
        """Only MFStorage may write — §5.1's single-writer design."""
        model = MFModel(MFConfig(f=4, seed=1))
        bolt = self._bolt(model)
        bolt.process(_click(), Collector())
        assert not model.has_user("u1")
        assert not model.has_video("v1")

    def test_unqualified_playtime_skipped(self):
        bolt = self._bolt()
        collector = Collector()
        tup = action_tuple(
            UserAction(0.0, "u", "ghost", ActionType.PLAYTIME, view_time=9)
        )
        bolt.process(tup, collector)
        assert collector.emitted == []

    def test_adjustable_rate_reflected_in_vectors(self):
        """Stronger actions move vectors further (Eq. 8)."""
        shifts = {}
        for kind in (ActionType.CLICK, ActionType.LIKE):
            model = MFModel(MFConfig(f=4, seed=1))
            bolt = ComputeMFBolt(
                model, VIDEOS, variant=COMBINE_MODEL,
                online=OnlineConfig(eta0=0.01, alpha=0.05),
            )
            collector = Collector()
            bolt.process(
                action_tuple(UserAction(0.0, "u1", "v1", kind)), collector
            )
            x_init = model.compute_update(
                "u1", "v1", 1.0, 0.01, persist_init=False
            )
            emitted = collector.emitted[0]["vector"]
            base = MFModel(MFConfig(f=4, seed=1))._init_vector("user", "u1")
            shifts[kind] = float(np.linalg.norm(emitted - base))
        assert shifts[ActionType.LIKE] > shifts[ActionType.CLICK]


class TestMFStorageBolt:
    def test_writes_user_and_video_params(self):
        model = MFModel(MFConfig(f=4, seed=1))
        bolt = MFStorageBolt(model)
        from repro.storm import StreamTuple

        bolt.process(
            StreamTuple(
                {"kind": "user", "key": "u1", "vector": np.ones(4), "bias": 0.5},
                stream=USER_VEC_STREAM,
            ),
            Collector(),
        )
        bolt.process(
            StreamTuple(
                {"kind": "video", "key": "v1", "vector": 2 * np.ones(4), "bias": -0.1},
                stream=VIDEO_VEC_STREAM,
            ),
            Collector(),
        )
        assert np.array_equal(model.user_vector("u1"), np.ones(4))
        assert model.user_bias("u1") == 0.5
        assert model.video_bias("v1") == -0.1
        assert bolt.writes == 2


class TestUserHistoryBolt:
    def test_records_engagements(self):
        history = UserHistoryStore()
        bolt = UserHistoryBolt(history)
        bolt.process(_click("u1", "v1", 1.0), Collector())
        bolt.process(_impress("u1", "v2", 2.0), Collector())
        assert history.recent("u1") == ["v1"]


class TestGetItemPairsBolt:
    def test_pairs_action_video_with_history(self):
        history = UserHistoryStore()
        history.add("u1", "old1", 1.0)
        history.add("u1", "old2", 2.0)
        bolt = GetItemPairsBolt(history)
        collector = Collector()
        bolt.process(_click("u1", "new", 3.0), collector)
        pairs = {
            (t["video_i"], t["video_j"]) for t in collector.emitted
        }
        assert pairs == {("new", "old2"), ("new", "old1")}
        assert all(t.stream == PAIR_STREAM for t in collector.emitted)

    def test_pair_key_is_order_independent(self):
        history = UserHistoryStore()
        history.add("u1", "b", 1.0)
        bolt = GetItemPairsBolt(history)
        collector = Collector()
        bolt.process(_click("u1", "a", 2.0), collector)
        assert collector.emitted[0]["pair"] == "a#b"

    def test_impressions_generate_no_pairs(self):
        bolt = GetItemPairsBolt(UserHistoryStore())
        collector = Collector()
        bolt.process(_impress(), collector)
        assert collector.emitted == []

    def test_max_pairs_cap(self):
        history = UserHistoryStore()
        for i in range(50):
            history.add("u1", f"h{i}", float(i))
        bolt = GetItemPairsBolt(history, max_pairs=5)
        collector = Collector()
        bolt.process(_click("u1", "new", 99.0), collector)
        assert len(collector.emitted) == 5


class TestItemPairSimAndResultStorage:
    def _table(self):
        model = MFModel(MFConfig(f=4, init_scale=0.5, seed=2))
        for vid in VIDEOS:
            model.ensure_video(vid)
        return SimilarVideoTable(
            VIDEOS,
            model,
            config=SimilarityConfig(table_size=5, xi=100.0, candidate_pool=5),
            clock=VirtualClock(0.0),
        )

    def test_sim_bolt_emits_both_directions(self):
        table = self._table()
        bolt = ItemPairSimBolt(table)
        from repro.storm import StreamTuple

        collector = Collector()
        bolt.process(
            StreamTuple(
                {"pair": "v0#v1", "video_i": "v0", "video_j": "v1", "ts": 0.0},
                stream=PAIR_STREAM,
            ),
            collector,
        )
        assert len(collector.emitted) == 2
        directed = {(t["video"], t["other"]) for t in collector.emitted}
        assert directed == {("v0", "v1"), ("v1", "v0")}
        assert all(t.stream == SIM_STREAM for t in collector.emitted)
        # scoring must not touch the table itself
        assert table.raw_entries("v0") == {}

    def test_unknown_video_pair_dropped(self):
        bolt = ItemPairSimBolt(self._table())
        from repro.storm import StreamTuple

        collector = Collector()
        bolt.process(
            StreamTuple(
                {"pair": "v0#zz", "video_i": "v0", "video_j": "zz", "ts": 0.0},
                stream=PAIR_STREAM,
            ),
            collector,
        )
        assert collector.emitted == []

    def test_result_storage_inserts_directed_entry(self):
        table = self._table()
        bolt = ResultStorageBolt(table)
        from repro.storm import StreamTuple

        bolt.process(
            StreamTuple(
                {"video": "v0", "other": "v1", "sim": 0.7, "ts": 0.0},
                stream=SIM_STREAM,
            ),
            Collector(),
        )
        assert table.raw_entries("v0") == {"v1": (0.7, 0.0)}
        assert table.raw_entries("v1") == {}  # directed: other side separate
        assert bolt.writes == 1
