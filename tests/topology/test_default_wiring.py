"""Tests that the default Figure 2 wiring matches the paper's figure."""

from repro.clock import VirtualClock
from repro.data import SyntheticWorld, WorldConfig
from repro.storm import FieldsGrouping
from repro.topology import (
    COMPUTE_MF,
    DEFAULT_PARALLELISM,
    GET_ITEM_PAIRS,
    ITEM_PAIR_SIM,
    MF_STORAGE,
    RESULT_STORAGE,
    SPOUT,
    USER_HISTORY,
    build_recommendation_topology,
)


def _topology():
    world = SyntheticWorld(
        WorldConfig(n_users=5, n_videos=5, n_types=2, days=1, seed=1)
    )
    topo, system = build_recommendation_topology(
        [], world.videos, clock=VirtualClock(0.0)
    )
    return topo, system


class TestFigure2Wiring:
    def test_all_seven_components_present(self):
        topo, _ = _topology()
        assert set(topo.components) == {
            SPOUT,
            USER_HISTORY,
            COMPUTE_MF,
            MF_STORAGE,
            GET_ITEM_PAIRS,
            ITEM_PAIR_SIM,
            RESULT_STORAGE,
        }
        assert set(DEFAULT_PARALLELISM) == set(topo.components)

    def test_spout_fans_out_to_three_lines(self):
        """Figure 2: the spout feeds UserHistory, ComputeMF and
        GetItemPairs — the three processing lines of §5.1."""
        topo, _ = _topology()
        targets = {t for t, _ in topo.targets(SPOUT, "default")}
        assert targets == {USER_HISTORY, COMPUTE_MF, GET_ITEM_PAIRS}

    def test_spout_edges_grouped_by_user(self):
        topo, _ = _topology()
        for _, grouping in topo.targets(SPOUT, "default"):
            assert isinstance(grouping, FieldsGrouping)
            assert grouping.fields == ("user",)

    def test_vector_repartitioning_by_storage_key(self):
        """The critical edge: ComputeMF -> MFStorage re-groups by the KV
        key, the single-writer guarantee."""
        topo, _ = _topology()
        for stream in ("user_vec", "video_vec"):
            targets = topo.targets(COMPUTE_MF, stream)
            assert [t for t, _ in targets] == [MF_STORAGE]
            grouping = targets[0][1]
            assert isinstance(grouping, FieldsGrouping)
            assert grouping.fields == ("kind", "key")

    def test_similarity_line_wiring(self):
        topo, _ = _topology()
        pair_targets = topo.targets(GET_ITEM_PAIRS, "pairs")
        assert [t for t, _ in pair_targets] == [ITEM_PAIR_SIM]
        assert pair_targets[0][1].fields == ("pair",)
        sim_targets = topo.targets(ITEM_PAIR_SIM, "sims")
        assert [t for t, _ in sim_targets] == [RESULT_STORAGE]
        assert sim_targets[0][1].fields == ("video",)

    def test_serving_recommender_shares_store(self):
        _, system = _topology()
        recommender = system.serving_recommender()
        # Both views read the same physical store object graph.
        system.model.put_user("ux", system.model._init_vector("user", "ux"), 0.1)
        assert recommender.model.user_bias("ux") == 0.1
