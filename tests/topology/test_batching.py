"""Micro-batched ComputeMF/MFStorage against the per-tuple baseline.

Batching is opt-in plumbing, not new math.  When the batch windows keep
the store caught up between flushes (one worker per stage, storage
flushing exactly per compute flush), the batched topology must leave the
*byte-identical* learned state.  With overlapping windows (parallel
workers buffering independently) updates become visible later and
interleave differently — the documented trade-off — but nothing may be
lost: every action processed, every emitted update persisted, buffered
residue drained by the executors' end-of-stream flush.
"""

import numpy as np
import pytest

from repro.clock import VirtualClock
from repro.config import ReproConfig
from repro.storm import Bolt, Collector, LocalExecutor, ThreadedExecutor
from repro.topology import (
    COMPUTE_MF,
    MF_STORAGE,
    BatchingConfig,
    build_recommendation_topology,
)


def _run(
    world,
    actions,
    batching=None,
    executor_cls=LocalExecutor,
    parallelism=None,
):
    topology, system = build_recommendation_topology(
        list(actions),
        world.videos,
        users=world.users,
        config=ReproConfig(),
        clock=VirtualClock(0.0),
        batching=batching,
        parallelism=parallelism,
    )
    metrics = executor_cls(topology).run()
    return system, metrics


class TestBatchingConfig:
    def test_defaults_are_per_tuple(self):
        config = BatchingConfig()
        assert config.compute_mf == 1
        assert config.mf_storage == 1

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            BatchingConfig(compute_mf=0)
        with pytest.raises(ValueError):
            BatchingConfig(mf_storage=-1)


SINGLE_WRITER = {COMPUTE_MF: 1, MF_STORAGE: 1}


class TestBatchedTopologyEquivalence:
    @pytest.mark.parametrize("batch", [4, 16, 64])
    def test_aligned_windows_are_byte_identical(
        self, small_world, small_split, batch
    ):
        # One worker per stage with per-tuple storage keeps the store
        # fully caught up between compute flushes, so the overlay replay
        # is bit-for-bit the sequential trajectory.
        actions = small_split.train[:300]
        base_system, base_metrics = _run(
            small_world, actions, parallelism=SINGLE_WRITER
        )
        batched_system, batched_metrics = _run(
            small_world,
            actions,
            batching=BatchingConfig(compute_mf=batch, mf_storage=1),
            parallelism=SINGLE_WRITER,
        )
        base, batched = base_system.model, batched_system.model
        assert batched.mu == base.mu
        assert batched.n_users == base.n_users
        assert batched.n_videos == base.n_videos
        videos = sorted(base.known_videos())
        for user_id in sorted(small_world.users)[:10]:
            np.testing.assert_array_equal(
                batched.predict_many(user_id, videos),
                base.predict_many(user_id, videos),
            )
        assert (
            batched_metrics.component(MF_STORAGE).processed
            == base_metrics.component(MF_STORAGE).processed
        )

    def test_parallel_batched_run_loses_nothing(
        self, small_world, small_split
    ):
        # Default parallelism (2 workers per stage): buffers overlap, so
        # update *visibility* reorders — but the stream is fully
        # processed, every emission persisted, and the same entities end
        # up learned.
        actions = small_split.train[:300]
        base_system, _ = _run(small_world, actions)
        system, metrics = _run(
            small_world,
            actions,
            batching=BatchingConfig(compute_mf=7, mf_storage=5),
        )
        assert metrics.component(COMPUTE_MF).processed == len(actions)
        assert (
            metrics.component(MF_STORAGE).processed
            == metrics.component(COMPUTE_MF).emitted
        )
        assert system.model.n_users == base_system.model.n_users
        assert system.model.n_videos == base_system.model.n_videos
        # mu folds the same ratings (atomically), only in flush order —
        # equal up to float summation order.
        assert system.model.mu == pytest.approx(
            base_system.model.mu, rel=1e-12
        )

    def test_threaded_executor_flushes_residue(self, small_world, small_split):
        # 300 actions with batch 64 guarantees partial buffers at
        # end-of-stream; the flush hook must drain them.
        actions = small_split.train[:300]
        base_system, _ = _run(small_world, actions)
        batched_system, metrics = _run(
            small_world,
            actions,
            batching=BatchingConfig(compute_mf=64, mf_storage=64),
            executor_cls=ThreadedExecutor,
        )
        assert metrics.component(COMPUTE_MF).processed == len(actions)
        assert (
            metrics.component(MF_STORAGE).processed
            == metrics.component(COMPUTE_MF).emitted
        )
        assert batched_system.model.n_users == base_system.model.n_users
        assert batched_system.model.n_videos == base_system.model.n_videos


class TestFlushHook:
    def test_default_flush_is_a_noop(self):
        class Plain(Bolt):
            def process(self, tup, collector):
                pass

        collector = Collector()
        Plain().flush(collector)
        assert collector.drain() == []

    def test_flush_emissions_are_routed(self, small_world, small_split):
        # MFStorage receives exactly what ComputeMF emits, including the
        # flush-time residue (processed == emitted upstream).
        actions = small_split.train[:50]
        _, metrics = _run(
            small_world,
            actions,
            batching=BatchingConfig(compute_mf=16, mf_storage=16),
        )
        assert (
            metrics.component(MF_STORAGE).processed
            == metrics.component(COMPUTE_MF).emitted
        )
