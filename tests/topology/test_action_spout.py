"""Tests for the action spout: parsing, filtering, shared sources."""

import threading

from repro.data import ActionType, UserAction
from repro.storm import ComponentContext
from repro.topology import ActionSpout, SharedSource, action_tuple


def _ctx():
    return ComponentContext("spout", 0, 1)


def _open(spout):
    spout.open(_ctx())
    return spout


class TestActionTuple:
    def test_fields(self):
        action = UserAction(1.0, "u1", "v1", ActionType.CLICK)
        tup = action_tuple(action)
        assert tup["user"] == "u1"
        assert tup["video"] == "v1"
        assert tup["action"] is action


class TestActionSpout:
    def test_emits_user_action_objects(self):
        action = UserAction(1.0, "u1", "v1", ActionType.CLICK)
        spout = _open(ActionSpout([action]))
        tup = spout.next_tuple()
        assert tup["action"] is action
        assert spout.next_tuple() is None

    def test_parses_raw_log_lines(self):
        line = UserAction(2.0, "u7", "v3", ActionType.PLAY).to_log_line()
        spout = _open(ActionSpout([line]))
        tup = spout.next_tuple()
        assert tup["user"] == "u7"
        assert tup["action"].action is ActionType.PLAY

    def test_filters_unqualified_tuples(self):
        """§5.1: the spout 'filters the unqualified data tuples'."""
        good = UserAction(1.0, "u", "v", ActionType.CLICK).to_log_line()
        spout = _open(ActionSpout(["garbage line", good, "1.0\tu\tv\twarp\t0"]))
        tuples = []
        while (tup := spout.next_tuple()) is not None:
            tuples.append(tup)
        assert len(tuples) == 1
        assert spout.filtered == 2
        assert spout.emitted == 1

    def test_exhaustion_returns_none_forever(self):
        spout = _open(ActionSpout([]))
        assert spout.next_tuple() is None
        assert spout.next_tuple() is None

    def test_mixed_sources(self):
        action = UserAction(1.0, "u", "v", ActionType.CLICK)
        spout = _open(ActionSpout([action, action.to_log_line()]))
        assert spout.next_tuple() is not None
        assert spout.next_tuple() is not None
        assert spout.next_tuple() is None


class TestSharedSource:
    def test_each_item_consumed_once(self):
        source = SharedSource(range(100))
        a = _open(ActionSpout([]))  # not used; just to mirror API
        seen = []
        for item in source:
            seen.append(item)
        assert seen == list(range(100))

    def test_two_spouts_split_the_stream(self):
        actions = [
            UserAction(float(i), f"u{i}", "v", ActionType.CLICK)
            for i in range(50)
        ]
        shared = SharedSource(actions)
        s1, s2 = _open(ActionSpout(shared)), _open(ActionSpout(shared))
        got = []
        while True:
            t1 = s1.next_tuple()
            t2 = s2.next_tuple()
            if t1 is None and t2 is None:
                break
            got += [t for t in (t1, t2) if t is not None]
        users = [t["user"] for t in got]
        assert sorted(users) == sorted(f"u{i}" for i in range(50))
        assert len(users) == 50  # no duplication

    def test_thread_safe_consumption(self):
        shared = SharedSource(range(2000))
        out = []
        lock = threading.Lock()

        def drain():
            for item in shared:
                with lock:
                    out.append(item)

        threads = [threading.Thread(target=drain) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(out) == list(range(2000))
