"""End-to-end integration tests across all subsystems."""

import pytest

from repro.clock import VirtualClock
from repro.core import RealtimeRecommender
from repro.data import actions_to_log, split_by_day
from repro.eval import ABTestHarness, evaluate
from repro.baselines import HotRecommender
from repro.storm import LocalExecutor
from repro.topology import build_recommendation_topology


class TestLogPipelineEndToEnd:
    def test_raw_logs_through_topology_to_recommendations(
        self, small_world, small_split
    ):
        """Serialize the world to raw log lines, run the full Figure 2
        topology over them, and serve recommendations from its state —
        the complete production path."""
        log_lines = actions_to_log(small_split.train).splitlines()
        clock = VirtualClock(0.0)
        topo, system = build_recommendation_topology(
            log_lines, small_world.videos, users=small_world.users, clock=clock
        )
        metrics = LocalExecutor(topo).run()
        assert metrics.snapshot()["spout"]["emitted"] == len(small_split.train)
        clock.set(max(a.timestamp for a in small_split.train) + 1)
        recommender = system.serving_recommender(enable_demographic=False)
        served = 0
        for user in list(small_world.users)[:20]:
            if recommender.recommend_ids(user, n=5):
                served += 1
        assert served > 0


class TestOfflineProtocolEndToEnd:
    def test_library_recommender_learns_on_paper_world(
        self, medium_world, medium_split
    ):
        """The offline protocol produces sane, positive scores on the
        calibrated world.  (The rMF-vs-Hot ordering needs the full-scale
        world and lives in benchmarks/test_fig7_table5_ab_ctr.py — at this
        reduced fixture scale popularity can still win.)"""
        liked = medium_world.genuinely_liked(medium_split.test)
        rmf = RealtimeRecommender(
            medium_world.videos,
            users=medium_world.users,
            clock=VirtualClock(0.0),
            enable_demographic=False,
        )
        rmf_result = evaluate(
            rmf,
            medium_split.train,
            medium_split.test,
            videos=medium_world.videos,
            liked=liked,
        )
        hot_result = evaluate(
            HotRecommender(exclude_watched=False),
            medium_split.train,
            medium_split.test,
            videos=medium_world.videos,
            liked=liked,
        )
        assert rmf_result.recall(10) > 0
        assert hot_result.recall(10) > 0
        assert 0.0 <= rmf_result.avg_rank <= 1.0
        # rMF must at least be in Hot's league even at toy scale.
        assert rmf_result.recall(10) >= hot_result.recall(10) * 0.5


class TestABTestEndToEnd:
    def test_rmf_arm_vs_hot_arm(self, small_world):
        """A short two-arm A/B run completes and produces sane CTRs."""
        rmf = RealtimeRecommender(
            small_world.videos,
            users=small_world.users,
            clock=VirtualClock(0.0),
        )
        hot = HotRecommender(clock=VirtualClock(0.0))
        harness = ABTestHarness(
            small_world,
            arms={"rMF": rmf, "Hot": hot},
            days=2,
            top_n=5,
            seed=5,
        )
        result = harness.run()
        assert set(result.daily_ctr()) == {"rMF", "Hot"}
        for series in result.daily_ctr().values():
            assert len(series) == 2
            assert all(0.0 <= ctr <= 1.0 for ctr in series)
        assert result.arms["rMF"].impressions[-1] > 0
