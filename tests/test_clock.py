"""Tests for the clock abstraction."""

import time

import pytest

from repro.clock import SECONDS_PER_DAY, Clock, SystemClock, VirtualClock


class TestSystemClock:
    def test_tracks_wall_time(self):
        clock = SystemClock()
        before = time.time()
        now = clock.now()
        after = time.time()
        assert before <= now <= after

    def test_satisfies_protocol(self):
        assert isinstance(SystemClock(), Clock)


class TestVirtualClock:
    def test_starts_at_given_time(self):
        assert VirtualClock(123.5).now() == 123.5

    def test_defaults_to_zero(self):
        assert VirtualClock().now() == 0.0

    def test_advance_moves_forward(self):
        clock = VirtualClock(10.0)
        assert clock.advance(5.0) == 15.0
        assert clock.now() == 15.0

    def test_advance_by_zero_is_allowed(self):
        clock = VirtualClock(1.0)
        clock.advance(0.0)
        assert clock.now() == 1.0

    def test_advance_negative_rejected(self):
        clock = VirtualClock()
        with pytest.raises(ValueError):
            clock.advance(-1.0)

    def test_set_pins_time(self):
        clock = VirtualClock()
        clock.set(100.0)
        assert clock.now() == 100.0

    def test_set_backwards_rejected(self):
        clock = VirtualClock(50.0)
        with pytest.raises(ValueError):
            clock.set(49.9)

    def test_does_not_move_on_its_own(self):
        clock = VirtualClock(7.0)
        time.sleep(0.01)
        assert clock.now() == 7.0

    def test_satisfies_protocol(self):
        assert isinstance(VirtualClock(), Clock)


def test_seconds_per_day_constant():
    assert SECONDS_PER_DAY == 86_400.0
