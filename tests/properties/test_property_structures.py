"""Property-based tests for the stateful structures: similar-video tables,
hot trackers, history stores and recommendation merging."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clock import VirtualClock
from repro.config import MFConfig, SimilarityConfig
from repro.core import (
    HotVideoTracker,
    MFModel,
    SimilarVideoTable,
    UserHistoryStore,
    merge_recommendations,
)
from repro.data import Video

video_ids = st.sampled_from([f"v{i}" for i in range(12)])
user_ids = st.sampled_from([f"u{i}" for i in range(5)])


def _table(table_size=4):
    videos = {
        f"v{i}": Video(f"v{i}", f"t{i % 3}", duration=100.0) for i in range(12)
    }
    model = MFModel(MFConfig(f=4, init_scale=0.5, seed=7))
    for vid in videos:
        model.ensure_video(vid)
    return SimilarVideoTable(
        videos,
        model,
        config=SimilarityConfig(
            table_size=table_size, xi=500.0, candidate_pool=table_size
        ),
        clock=VirtualClock(0.0),
    )


class TestSimilarVideoTableProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        pairs=st.lists(
            st.tuples(video_ids, video_ids, st.floats(0, 1000)), max_size=60
        )
    )
    def test_invariants_hold_under_any_pair_sequence(self, pairs):
        table = _table(table_size=4)
        for video_i, video_j, ts in sorted(pairs, key=lambda p: p[2]):
            table.offer_pair(video_i, video_j, now=ts)
        for video in table.tracked_videos():
            entries = table.raw_entries(video)
            # bounded
            assert len(entries) <= 4
            # never self-similar
            assert video not in entries
            neighbors = table.neighbors(video, now=1000.0)
            sims = [s for _, s in neighbors]
            # sorted descending, positive only
            assert sims == sorted(sims, reverse=True)
            assert all(s > 0 for s in sims)

    @settings(max_examples=20, deadline=None)
    @given(
        pairs=st.lists(
            st.tuples(video_ids, video_ids), min_size=1, max_size=30
        )
    )
    def test_symmetry_of_offer(self, pairs):
        """offer_pair(i, j) touches both directed lists (when scoreable)."""
        table = _table(table_size=12)
        for video_i, video_j in pairs:
            raw = table.offer_pair(video_i, video_j, now=0.0)
            if raw is not None:
                assert video_j in table.raw_entries(video_i)
                assert video_i in table.raw_entries(video_j)


class TestHotTrackerProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        events=st.lists(
            st.tuples(video_ids, st.floats(0.1, 5.0), st.floats(0, 10_000)),
            max_size=50,
        ),
        k=st.integers(1, 10),
    )
    def test_hot_list_sorted_bounded_positive(self, events, k):
        tracker = HotVideoTracker(
            half_life=1000.0, max_tracked=8, clock=VirtualClock(0.0)
        )
        for video, weight, ts in sorted(events, key=lambda e: e[2]):
            tracker.record("g", video, weight, now=ts)
        hot = tracker.hot("g", k, now=20_000.0)
        assert len(hot) <= min(k, 8)
        scores = [s for _, s in hot]
        assert scores == sorted(scores, reverse=True)
        assert all(s >= 0 for s in scores)


class TestHistoryProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        events=st.lists(st.tuples(user_ids, video_ids), max_size=60),
        max_items=st.integers(1, 10),
    )
    def test_history_bounded_deduplicated_ordered(self, events, max_items):
        history = UserHistoryStore(max_items=max_items)
        for ts, (user, video) in enumerate(events):
            history.add(user, video, float(ts))
        for user in {u for u, _ in events}:
            recent = history.recent(user)
            assert len(recent) <= max_items
            assert len(recent) == len(set(recent))
            # most recent engagement first
            last_video = next(
                v for u, v in reversed(events) if u == user
            )
            if last_video in recent:
                assert recent[0] == last_video


class TestMergeProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        primary=st.lists(video_ids, max_size=12, unique=True),
        db=st.lists(video_ids, max_size=12, unique=True),
        n=st.integers(1, 12),
        fraction=st.floats(0.0, 1.0),
    )
    def test_merge_invariants(self, primary, db, n, fraction):
        merged = merge_recommendations(primary, db, n, fraction)
        # bounded, unique, sourced only from inputs
        assert len(merged) <= n
        assert len(merged) == len(set(merged))
        assert set(merged) <= set(primary) | set(db)
        # the MF head is preserved in order
        head = [v for v in merged if v in primary[: n - int(n * fraction)]]
        expected_head = [
            v for v in primary[: n - int(n * fraction)] if v in merged
        ]
        assert head == expected_head
        # nothing is wasted: if we returned fewer than n, we ran out of input
        if len(merged) < n:
            assert len(set(primary) | set(db)) == len(merged)
