"""Property-based tests for the factor arenas against a dict reference.

The reference model is the obvious thing: a ``dict`` of id → (vector,
bias).  Random operation sequences — put, set_bias, setdefault, delete,
snapshot, restore — must leave the arena and the dict agreeing exactly,
through however many growth generations the sequence forces.  The same
machine runs against the in-process :class:`FactorArena` and the
shared-memory :class:`SharedFactorArena`, and (marked ``multiprocess``)
with every mutation applied by a worker process attached to the same
segments, proving the cross-process view is the same arena.
"""

import multiprocessing as mp

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FactorArena, SharedFactorArena

F = 3

entity_ids = st.sampled_from([f"e{i}" for i in range(25)])
scalars = st.floats(
    min_value=-100, max_value=100, allow_nan=False, allow_infinity=False
)

operations = st.lists(
    st.one_of(
        st.tuples(st.just("put"), entity_ids, scalars, scalars),
        st.tuples(st.just("set_bias"), entity_ids, scalars),
        st.tuples(st.just("setdefault"), entity_ids, scalars),
        st.tuples(st.just("delete"), entity_ids),
        st.tuples(st.just("snapshot_restore")),
    ),
    max_size=60,
)


def _apply(arena, reference, op) -> None:
    """Apply one operation to both the arena under test and the model."""
    if op[0] == "put":
        _, eid, value, bias = op
        arena.put(eid, np.full(F, value), bias)
        reference[eid] = (np.full(F, value), bias)
    elif op[0] == "set_bias":
        _, eid, bias = op
        arena.set_bias(eid, bias)
        if eid in reference:
            reference[eid] = (reference[eid][0], bias)
        # A bias on a vector-less id is bookkeeping the reference model
        # ignores: `ids()`/`len()` only count learned vectors.
    elif op[0] == "setdefault":
        _, eid, value = op
        got = arena.setdefault_vector(eid, lambda: np.full(F, value))
        if eid not in reference:
            reference[eid] = (np.full(F, value), arena.bias(eid))
        assert np.array_equal(got, reference[eid][0])
    elif op[0] == "delete":
        _, eid = op
        deleted = arena.delete(eid)
        assert deleted == (eid in reference)
        reference.pop(eid, None)
    elif op[0] == "snapshot_restore":
        # Round-tripping through a snapshot must be the identity.
        if isinstance(arena, SharedFactorArena):
            arena.load_arena(arena.snapshot())


def _check_agreement(arena, reference) -> None:
    assert len(arena) == len(reference)
    assert sorted(arena.ids()) == sorted(reference)
    for eid, (vector, bias) in reference.items():
        assert np.array_equal(arena.vector(eid), vector)
        assert arena.bias(eid) == bias
    all_ids = sorted(reference) + ["never-written"]
    matrix = arena.vectors_matrix(all_ids)
    biases = arena.biases_array(all_ids)
    for row, eid in enumerate(all_ids):
        if eid in reference:
            assert np.array_equal(matrix[row], reference[eid][0])
            assert biases[row] == reference[eid][1]
        else:
            assert np.array_equal(matrix[row], np.zeros(F))


class TestFactorArenaProperties:
    @settings(max_examples=60, deadline=None)
    @given(ops=operations)
    def test_matches_dict_reference(self, ops):
        arena = FactorArena(F, initial_capacity=1)
        reference: dict = {}
        for op in ops:
            _apply(arena, reference, op)
        _check_agreement(arena, reference)


class TestSharedArenaProperties:
    @settings(max_examples=40, deadline=None)
    @given(ops=operations)
    def test_matches_dict_reference(self, ops):
        arena = SharedFactorArena(F, initial_capacity=1, ids_capacity=64)
        try:
            reference: dict = {}
            for op in ops:
                _apply(arena, reference, op)
            _check_agreement(arena, reference)
        finally:
            arena.unlink()

    @settings(max_examples=40, deadline=None)
    @given(ops=operations)
    def test_snapshot_equals_live_state(self, ops):
        arena = SharedFactorArena(F, initial_capacity=1, ids_capacity=64)
        try:
            reference: dict = {}
            for op in ops:
                _apply(arena, reference, op)
            snap = arena.snapshot()
            assert len(snap) == len(reference)
            for eid, (vector, bias) in reference.items():
                assert np.array_equal(snap.vector(eid), vector)
                assert snap.bias(eid) == bias
        finally:
            arena.unlink()


def _worker_apply(name: str, ops, done) -> None:
    """Apply every mutation from a separate process attached by name."""
    arena = SharedFactorArena.attach(name)
    reference: dict = {}
    for op in ops:
        _apply(arena, reference, op)
    arena.close()
    done.set()


@pytest.mark.multiprocess
class TestSharedArenaCrossProcess:
    @settings(max_examples=15, deadline=None)
    @given(ops=operations)
    def test_worker_mutations_match_reference(self, ops):
        """A worker process applies the ops; the parent checks the result.

        The parent maintains the reference model by replaying the same
        sequence against a plain dict — the shared arena must agree with
        it even though every write happened in another process (and the
        growth generations it forced were created there too).
        """
        arena = SharedFactorArena(F, initial_capacity=1, ids_capacity=64)
        try:
            ctx = mp.get_context("fork")
            done = ctx.Event()
            proc = ctx.Process(
                target=_worker_apply, args=(arena.name, ops, done)
            )
            proc.start()
            proc.join(timeout=60)
            assert done.is_set(), "worker did not finish"
            reference: dict = {}
            shadow = FactorArena(F, initial_capacity=1)
            for op in ops:
                _apply(shadow, reference, op)
            _check_agreement(arena, reference)
        finally:
            arena.unlink()
