"""Property-based tests for the online trainer's bookkeeping invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import OnlineConfig
from repro.core import MFModel, OnlineTrainer
from repro.core.variants import ALL_VARIANTS
from repro.data import ActionType, UserAction, Video

VIDEOS = {f"v{i}": Video(f"v{i}", "t", duration=1000.0) for i in range(5)}

actions = st.builds(
    lambda ts, user, video, kind, vt: UserAction(
        ts,
        f"u{user}",
        f"v{video}",
        kind,
        view_time=(vt if kind is ActionType.PLAYTIME else 0.0),
    ),
    ts=st.floats(min_value=0, max_value=1e6),
    user=st.integers(0, 4),
    video=st.integers(0, 7),  # ids 5-7 are unknown to the catalogue
    kind=st.sampled_from(list(ActionType)),
    vt=st.floats(min_value=1.0, max_value=2000.0),
)


class TestTrainerAccounting:
    @settings(max_examples=30, deadline=None)
    @given(stream=st.lists(actions, max_size=60), variant=st.sampled_from(ALL_VARIANTS))
    def test_counters_partition_the_stream(self, stream, variant):
        """seen == updated + skipped_zero + skipped_invalid, always."""
        trainer = OnlineTrainer(
            MFModel(),
            videos=VIDEOS,
            variant=variant,
            config=OnlineConfig(eta0=0.01, alpha=0.01),
        )
        trainer.process_stream(stream)
        stats = trainer.stats
        assert stats.seen == len(stream)
        assert (
            stats.updated + stats.skipped_zero + stats.skipped_invalid
            == stats.seen
        )
        # every update touched existing entities
        assert trainer.model.n_users <= 5
        assert stats.mean_abs_error >= 0.0

    @settings(max_examples=30, deadline=None)
    @given(stream=st.lists(actions, max_size=60))
    def test_learning_rate_always_in_declared_range(self, stream):
        config = OnlineConfig(eta0=0.005, alpha=0.02, max_eta=0.05)
        trainer = OnlineTrainer(
            MFModel(), videos=VIDEOS, config=config
        )
        for action in stream:
            update = trainer.process(action)
            if update is not None:
                assert config.eta0 <= update.eta <= config.max_eta
