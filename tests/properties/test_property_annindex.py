"""Property-based tests for the ANN index: the Charikar collision law,
membership under arbitrary upsert/evict interleavings, and shortlist
containment/partition invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import RetrievalConfig
from repro.core import AnnIndex, RandomHyperplanes
from repro.data import Video

KINDS = ("music", "news", "sport")


def _vector_for(video_id: str, f: int = 4) -> np.ndarray:
    """A deterministic pseudo-random factor vector per id."""
    rng = np.random.default_rng(abs(hash(video_id)) % (2**32))
    return rng.standard_normal(f) * 0.3


def _videos(n=12):
    return {
        f"v{i}": Video(f"v{i}", KINDS[i % len(KINDS)], duration=100.0)
        for i in range(n)
    }


class TestCollisionLaw:
    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        angle=st.floats(0.05, np.pi - 0.05),
    )
    def test_hamming_tracks_angle(self, seed, angle):
        """P(sign bit differs) = theta/pi (Charikar): with 504 hyperplanes
        the empirical bit-difference rate stays within a generous CLT band
        of the angle between the vectors."""
        family = RandomHyperplanes(6, tables=8, band_bits=63, seed=seed)
        rng = np.random.default_rng(seed)
        a = rng.standard_normal(6)
        a /= np.linalg.norm(a)
        raw = rng.standard_normal(6)
        ortho = raw - (raw @ a) * a
        ortho /= np.linalg.norm(ortho)
        b = np.cos(angle) * a + np.sin(angle) * ortho
        bits = family.bit_matrix(np.vstack([a, b]))
        observed = RandomHyperplanes.hamming(bits[0], bits[1]) / bits.shape[1]
        assert abs(observed - angle / np.pi) < 0.15

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_closer_pair_collides_more(self, seed):
        family = RandomHyperplanes(6, tables=8, band_bits=63, seed=seed)
        rng = np.random.default_rng(seed)
        a = rng.standard_normal(6)
        a /= np.linalg.norm(a)
        raw = rng.standard_normal(6)
        ortho = raw - (raw @ a) * a
        ortho /= np.linalg.norm(ortho)

        def ham(angle):
            b = np.cos(angle) * a + np.sin(angle) * ortho
            bits = family.bit_matrix(np.vstack([a, b]))
            return RandomHyperplanes.hamming(bits[0], bits[1])

        assert ham(0.2) < ham(2.9)


ops = st.lists(
    st.tuples(
        st.sampled_from(["upsert", "evict"]),
        st.sampled_from([f"v{i}" for i in range(12)]),
    ),
    max_size=60,
)


class TestMembership:
    @settings(max_examples=40, deadline=None)
    @given(ops=ops)
    def test_matches_dict_reference_under_any_interleaving(self, ops):
        videos = _videos()
        idx = AnnIndex(
            4, videos=videos, config=RetrievalConfig(check_every=1)
        )
        reference: dict[str, np.ndarray] = {}
        for op, vid in ops:
            if op == "upsert":
                vec = _vector_for(vid)
                idx.upsert(vid, vec)
                reference[vid] = vec
            else:
                assert idx.evict(vid) == (vid in reference)
                reference.pop(vid, None)
        assert len(idx) == len(reference)
        assert idx.indexed_ids() == sorted(reference)
        for vid in videos:
            assert (vid in idx) == (vid in reference)
        # Every member retrieves itself; non-members never appear.
        for vid, vec in reference.items():
            shortlist = idx.query_item(vec, len(reference))
            assert vid in shortlist
            assert set(shortlist) <= set(reference)


class TestShortlistInvariants:
    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        allowed=st.sets(st.sampled_from(KINDS), min_size=1),
        n=st.integers(1, 20),
    )
    def test_subset_of_catalog_and_respects_partitions(
        self, seed, allowed, n
    ):
        videos = _videos(30)
        ids = sorted(videos)
        vectors = np.vstack([_vector_for(vid, 8) for vid in ids])
        idx = AnnIndex(8, videos=videos)
        idx.bulk_load(ids, vectors)
        query = np.random.default_rng(seed).standard_normal(8)
        shortlist = idx.query_user(query, n, allowed_partitions=allowed)
        assert set(shortlist) <= set(ids)
        assert shortlist == sorted(shortlist)
        assert all(videos[vid].kind in allowed for vid in shortlist)
        excluded = set(ids[:10])
        filtered = idx.query_user(query, n, exclude=excluded)
        assert not excluded & set(filtered)
