"""Property-based tests (hypothesis) for the library's core invariants."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ActionWeightConfig, MFConfig
from repro.core import (
    LogPlaytimeWeigher,
    MFModel,
    cf_similarity,
    damping,
    fuse,
)
from repro.data import ActionType, UserAction, Video
from repro.eval import percentile_rank, recall_at_n
from repro.hashing import stable_bucket, stable_hash
from repro.kvstore import InMemoryKVStore

ids = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126),
    min_size=1,
    max_size=12,
)


class TestHashingProperties:
    @given(key=st.one_of(ids, st.integers(), st.tuples(ids, ids)))
    def test_stable_hash_is_pure(self, key):
        assert stable_hash(key) == stable_hash(key)

    @given(key=ids, buckets=st.integers(min_value=1, max_value=1024))
    def test_bucket_in_range(self, key, buckets):
        assert 0 <= stable_bucket(key, buckets) < buckets


class TestWeightProperties:
    weigher = LogPlaytimeWeigher()
    video = Video("v", "t", duration=1000.0)

    @given(vrate=st.floats(min_value=0.001, max_value=1.0))
    def test_playtime_weight_bounded(self, vrate):
        """w in [a - b, a] for every view rate (floor included)."""
        cfg = ActionWeightConfig()
        action = UserAction(
            0.0, "u", "v", ActionType.PLAYTIME, view_time=vrate * 1000.0
        )
        w = self.weigher.weight(action, self.video)
        assert cfg.a - cfg.b - 1e-9 <= w <= cfg.a + 1e-9

    @given(
        v1=st.floats(min_value=0.001, max_value=1.0),
        v2=st.floats(min_value=0.001, max_value=1.0),
    )
    def test_playtime_weight_monotone(self, v1, v2):
        lo, hi = sorted((v1, v2))
        a1 = UserAction(0.0, "u", "v", ActionType.PLAYTIME, view_time=lo * 1000)
        a2 = UserAction(0.0, "u", "v", ActionType.PLAYTIME, view_time=hi * 1000)
        assert self.weigher.weight(a1, self.video) <= self.weigher.weight(
            a2, self.video
        ) + 1e-12

    @given(vrate=st.floats(min_value=0.001, max_value=1.0))
    def test_weights_never_negative(self, vrate):
        action = UserAction(
            0.0, "u", "v", ActionType.PLAYTIME, view_time=vrate * 1000.0
        )
        assert self.weigher.weight(action, self.video) >= 0.0


class TestSimilarityProperties:
    @given(
        elapsed=st.floats(min_value=0, max_value=1e7),
        xi=st.floats(min_value=1.0, max_value=1e6),
    )
    def test_damping_in_unit_interval(self, elapsed, xi):
        d = damping(elapsed, xi)
        assert 0.0 <= d <= 1.0

    @given(
        t1=st.floats(min_value=0, max_value=1e6),
        t2=st.floats(min_value=0, max_value=1e6),
        xi=st.floats(min_value=1.0, max_value=1e5),
    )
    def test_damping_monotone(self, t1, t2, xi):
        lo, hi = sorted((t1, t2))
        assert damping(hi, xi) <= damping(lo, xi)

    @given(
        xi=st.floats(min_value=1.0, max_value=1e5),
        elapsed=st.floats(min_value=0.0, max_value=1e5),
    )
    def test_damping_half_life_identity(self, xi, elapsed):
        """d(t + xi) == d(t) / 2."""
        assert math.isclose(
            damping(elapsed + xi, xi),
            damping(elapsed, xi) / 2,
            rel_tol=1e-9,
        )

    @given(
        s1=st.floats(min_value=-10, max_value=10),
        s2=st.floats(min_value=0, max_value=1),
        beta=st.floats(min_value=0, max_value=1),
    )
    def test_fusion_between_components(self, s1, s2, beta):
        fused = fuse(s1, s2, beta)
        assert min(s1, s2) - 1e-9 <= fused <= max(s1, s2) + 1e-9

    @given(
        vec=st.lists(
            st.floats(min_value=-5, max_value=5), min_size=2, max_size=16
        )
    )
    def test_cf_similarity_symmetric(self, vec):
        y1 = np.array(vec)
        y2 = np.array(vec[::-1])
        assert cf_similarity(y1, y2) == cf_similarity(y2, y1)


class TestMetricProperties:
    @given(
        recs=st.lists(ids, min_size=1, max_size=15, unique=True),
        liked=st.sets(ids, min_size=1, max_size=15),
        n=st.integers(min_value=1, max_value=15),
    )
    def test_recall_bounded(self, recs, liked, n):
        value = recall_at_n({"u": recs}, {"u": liked}, n)
        assert 0.0 <= value <= 1.0

    @given(
        recs=st.lists(ids, min_size=1, max_size=15, unique=True),
        liked=st.sets(ids, min_size=1, max_size=15),
    )
    def test_recall_hits_monotone_in_n(self, recs, liked):
        """The absolute hit count never drops as N grows."""
        hits = [
            recall_at_n({"u": recs}, {"u": liked}, n) * n
            for n in range(1, len(recs) + 1)
        ]
        assert all(b >= a - 1e-9 for a, b in zip(hits, hits[1:]))

    @given(
        length=st.integers(min_value=1, max_value=100),
        data=st.data(),
    )
    def test_percentile_rank_bounds(self, length, data):
        position = data.draw(st.integers(min_value=0, max_value=length - 1))
        assert 0.0 <= percentile_rank(position, length) < 1.0


class TestKVStoreProperties:
    @given(
        ops=st.lists(
            st.tuples(ids, st.integers(min_value=-100, max_value=100)),
            max_size=60,
        )
    )
    def test_store_matches_reference_dict(self, ops):
        """The store behaves exactly like a dict under put/get."""
        store = InMemoryKVStore()
        reference: dict = {}
        for key, value in ops:
            store.put(key, value)
            reference[key] = value
        assert dict(store.items()) == reference
        assert len(store) == len(reference)

    @given(
        keys=st.lists(ids, min_size=1, max_size=40),
    )
    def test_version_counts_writes(self, keys):
        store = InMemoryKVStore()
        from collections import Counter

        writes = Counter()
        for key in keys:
            store.put(key, 0)
            writes[key] += 1
        for key, count in writes.items():
            assert store.version(key) == count


class TestMFProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        rating=st.floats(min_value=0.0, max_value=3.5),
        eta=st.floats(min_value=0.001, max_value=0.2),
    )
    def test_small_step_reduces_error(self, rating, eta):
        model = MFModel(MFConfig(f=4, init_scale=0.1, lam=0.0, seed=1))
        model.ensure_user("u")
        model.ensure_video("v")
        before = model.error("u", "v", rating)
        model.sgd_step("u", "v", rating, eta)
        after = model.error("u", "v", rating)
        assert abs(after) <= abs(before) + 1e-9

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31))
    def test_init_idempotent_across_models(self, seed):
        m1 = MFModel(MFConfig(f=6, seed=seed))
        m2 = MFModel(MFConfig(f=6, seed=seed))
        assert np.array_equal(m1.ensure_user("uX"), m2.ensure_user("uX"))
